// Package iofault is an injectable filesystem seam with a deterministic
// storage-fault engine for the infrastructure layer.
//
// internal/faultinject hardened the *simulation* layer — sensors,
// transitions, meters — while the *infrastructure* layer (the run cache's
// gob disk files, the daemon's job journal) trusted the filesystem
// completely. Real storage misbehaves in well-catalogued ways: writes hit
// ENOSPC, land short, or succeed while the following fsync fails; reads
// return rotted bytes; renames fail on the far side of a directory quota.
// This package lets those failures be injected deterministically under any
// component that takes an FS instead of calling package os directly.
//
// # Determinism
//
// Fault decisions follow the internal/faultinject plan style: every class
// owns a channel with its own salted seed, derived statelessly from the
// plan's base seed with parallel.TaskSeed, and consecutive decisions on a
// channel consume consecutive parallel.Uniform draws. A Plan is plain data;
// a nil or zero plan makes Wrap return the wrapped FS itself, so healthy
// paths are bit- and allocation-identical to code that never saw this
// package. Unlike faultinject's per-machine injectors, a FaultFS may be
// shared by concurrent goroutines (the run cache is), so its channels are
// mutex-guarded; under concurrency the schedule is deterministic per call
// sequence, not per caller.
package iofault

import (
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"sync"

	"greengpu/internal/parallel"
	"greengpu/internal/telemetry"
)

// Package metrics (see docs/OBSERVABILITY.md "Infrastructure faults").
// No-ops unless telemetry is enabled.
var (
	metricWriteErrors = telemetry.NewCounter("greengpu_iofault_write_errors_total",
		"Injected whole-write failures (ENOSPC with nothing written).")
	metricShortWrites = telemetry.NewCounter("greengpu_iofault_short_writes_total",
		"Injected short writes (a prefix lands, then ENOSPC).")
	metricSyncErrors = telemetry.NewCounter("greengpu_iofault_sync_errors_total",
		"Injected fsync failures (data durability unknown to the caller).")
	metricReadCorruptions = telemetry.NewCounter("greengpu_iofault_read_corruptions_total",
		"Injected read corruptions (one bit flipped in the returned buffer).")
	metricRenameErrors = telemetry.NewCounter("greengpu_iofault_rename_errors_total",
		"Injected rename failures (the old path stays in place).")
)

// Injected error sentinels. They are distinct values rather than syscall
// errnos so tests and callers can errors.Is against them portably.
var (
	// ErrNoSpace is the injected analogue of ENOSPC: the device is full and
	// the write (or its tail) never landed.
	ErrNoSpace = errors.New("iofault: no space left on device (injected)")
	// ErrIO is the injected analogue of EIO: the operation failed for a
	// reason the caller cannot distinguish from media failure.
	ErrIO = errors.New("iofault: input/output error (injected)")
)

// File is the slice of *os.File the infrastructure layer needs: stream
// reads and writes, durability (Sync), identity (Name) and Close.
type File interface {
	Read(p []byte) (int, error)
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// FS is the filesystem seam. Disk is the real implementation; FaultFS
// wraps any FS with an injected fault plan. The method set is exactly what
// internal/runcache's disk layer and internal/jobstore's journal use.
type FS interface {
	// MkdirAll creates a directory path like os.MkdirAll.
	MkdirAll(path string, perm fs.FileMode) error
	// Open opens a file for reading like os.Open.
	Open(name string) (File, error)
	// OpenFile is the generalized open like os.OpenFile.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a unique temporary file like os.CreateTemp.
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath like os.Rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file like os.Remove.
	Remove(name string) error
	// Truncate resizes a file like os.Truncate.
	Truncate(name string, size int64) error
	// ReadDir lists a directory like os.ReadDir.
	ReadDir(name string) ([]fs.DirEntry, error)
}

// Disk is the real filesystem: every method delegates to package os.
var Disk FS = osFS{}

// osFS implements FS over package os.
type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }

// Plan parameterizes every storage-fault class. It is plain data in the
// faultinject.Plan style: the zero value injects nothing and all randomness
// derives from Seed. Rates are per-opportunity probabilities in [0,1] (per
// Write call, per Sync call, per Read call, per Rename call).
type Plan struct {
	// Seed is the base seed every per-class channel seed derives from.
	Seed uint64

	// WriteErrRate fails a Write outright: nothing lands and the call
	// returns ErrNoSpace, modelling a full device.
	WriteErrRate float64
	// ShortWriteRate lands only the first half of a Write's bytes before
	// returning ErrNoSpace — the torn-write case journals must survive.
	ShortWriteRate float64
	// SyncErrRate fails a Sync with ErrIO after the data may or may not
	// have reached the platter — the caller must treat the file's durable
	// contents as unknown.
	SyncErrRate float64
	// ReadCorruptRate flips one bit of a Read's returned buffer, modelling
	// bit rot the checksum layer has to catch.
	ReadCorruptRate float64
	// RenameErrRate fails a Rename with ErrIO, leaving the old path in
	// place.
	RenameErrRate float64
}

// Default returns the moderate all-classes plan the storage-fault tests
// run under.
func Default(seed uint64) Plan {
	return Plan{
		Seed:            seed,
		WriteErrRate:    0.05,
		ShortWriteRate:  0.05,
		SyncErrRate:     0.05,
		ReadCorruptRate: 0.05,
		RenameErrRate:   0.05,
	}
}

// Validate reports the first problem with the plan, if any.
func (p *Plan) Validate() error {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"WriteErrRate", p.WriteErrRate},
		{"ShortWriteRate", p.ShortWriteRate},
		{"SyncErrRate", p.SyncErrRate},
		{"ReadCorruptRate", p.ReadCorruptRate},
		{"RenameErrRate", p.RenameErrRate},
	} {
		if math.IsNaN(c.v) || c.v < 0 || c.v > 1 {
			return fmt.Errorf("iofault: %s = %v, must be in [0,1]", c.name, c.v)
		}
	}
	return nil
}

// Zero reports whether the plan injects nothing: every rate is exactly
// zero. Wrap returns the wrapped FS unchanged for a zero plan.
func (p *Plan) Zero() bool {
	return p.WriteErrRate == 0 && p.ShortWriteRate == 0 && p.SyncErrRate == 0 &&
		p.ReadCorruptRate == 0 && p.RenameErrRate == 0
}

// Counts tallies injected storage faults by class.
type Counts struct {
	// WriteErrors is whole-write failures (nothing landed).
	WriteErrors uint64
	// ShortWrites is writes that landed a prefix then failed.
	ShortWrites uint64
	// SyncErrors is failed fsyncs.
	SyncErrors uint64
	// ReadCorruptions is reads with a flipped bit.
	ReadCorruptions uint64
	// RenameErrors is failed renames.
	RenameErrors uint64
}

// Total returns the number of injected faults across all classes.
func (c Counts) Total() uint64 {
	return c.WriteErrors + c.ShortWrites + c.SyncErrors + c.ReadCorruptions + c.RenameErrors
}

// Channel salts, frozen like faultinject's: changing one changes every
// injected sequence.
const (
	saltWrite   uint64 = 0x10fa0001
	saltShort   uint64 = 0x10fa0002
	saltSync    uint64 = 0x10fa0003
	saltRead    uint64 = 0x10fa0004
	saltRename  uint64 = 0x10fa0005
	saltBitFlip uint64 = 0x10fa0006
)

// channel is one fault class's stateless draw stream: a derived seed plus
// a draw counter, identical in shape to faultinject's.
type channel struct {
	seed uint64
	k    uint64
}

func newChannel(base, salt uint64) channel {
	return channel{seed: parallel.TaskSeed(base^salt, 0)}
}

// next consumes one uniform draw in [0,1).
func (c *channel) next() float64 {
	u := parallel.Uniform(c.seed, c.k)
	c.k++
	return u
}

// FaultFS wraps an FS with an injected fault plan. Unlike the simulation
// injectors it is safe for concurrent use: the run cache serves many
// goroutines through one FS, so every draw and count is mutex-guarded.
type FaultFS struct {
	inner FS
	plan  Plan

	mu      sync.Mutex
	counts  Counts
	write   channel
	short   channel
	sync    channel
	read    channel
	rename  channel
	bitFlip channel
}

// Wrap returns fsys with the plan's faults injected. A nil-rate (zero)
// plan returns fsys itself — the healthy path never pays for the seam. It
// panics on an invalid plan; use Plan.Validate to check first.
func Wrap(fsys FS, p Plan) FS {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if p.Zero() {
		return fsys
	}
	return &FaultFS{
		inner:   fsys,
		plan:    p,
		write:   newChannel(p.Seed, saltWrite),
		short:   newChannel(p.Seed, saltShort),
		sync:    newChannel(p.Seed, saltSync),
		read:    newChannel(p.Seed, saltRead),
		rename:  newChannel(p.Seed, saltRename),
		bitFlip: newChannel(p.Seed, saltBitFlip),
	}
}

// Counts returns the faults injected so far, by class.
func (f *FaultFS) Counts() Counts {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts
}

// MkdirAll delegates to the wrapped FS; directory creation is not a
// faulted class (every consumer creates directories once, at startup,
// where an error is already surfaced loudly).
func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

// Open opens a file whose reads pass through the corruption channel.
func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// OpenFile opens a file whose reads and writes pass through the fault
// channels.
func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// CreateTemp creates a temporary file whose writes pass through the fault
// channels.
func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

// Rename fails with ErrIO at the plan's rename rate, leaving the old path
// in place; otherwise it delegates.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	inject := f.plan.RenameErrRate > 0 && f.rename.next() < f.plan.RenameErrRate
	if inject {
		f.counts.RenameErrors++
	}
	f.mu.Unlock()
	if inject {
		metricRenameErrors.Inc()
		return fmt.Errorf("rename %s %s: %w", oldpath, newpath, ErrIO)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove delegates to the wrapped FS. Removal is not a faulted class: the
// consumers use it only for best-effort cleanup of entries they already
// distrust.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// Truncate delegates to the wrapped FS. Truncation is the journal's
// recovery action — injecting failures into recovery itself would only
// test the operating system's ability to lose twice.
func (f *FaultFS) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

// ReadDir delegates to the wrapped FS.
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }

// faultFile threads one file's reads and writes through the owning
// FaultFS's channels.
type faultFile struct {
	File
	fs *FaultFS
}

// Write fails outright (ErrNoSpace, nothing written) at the write-error
// rate, lands only the first half (then ErrNoSpace) at the short-write
// rate, and otherwise delegates.
func (f *faultFile) Write(p []byte) (int, error) {
	fs := f.fs
	fs.mu.Lock()
	var short bool
	switch {
	case fs.plan.WriteErrRate > 0 && fs.write.next() < fs.plan.WriteErrRate:
		fs.counts.WriteErrors++
		fs.mu.Unlock()
		metricWriteErrors.Inc()
		return 0, fmt.Errorf("write %s: %w", f.Name(), ErrNoSpace)
	case fs.plan.ShortWriteRate > 0 && fs.short.next() < fs.plan.ShortWriteRate && len(p) > 1:
		fs.counts.ShortWrites++
		short = true
	}
	fs.mu.Unlock()
	if short {
		metricShortWrites.Inc()
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, fmt.Errorf("write %s: %w", f.Name(), ErrNoSpace)
	}
	return f.File.Write(p)
}

// Sync fails with ErrIO at the sync-error rate — after the underlying
// write may already have landed, which is exactly what makes real fsync
// failures poisonous — and otherwise delegates.
func (f *faultFile) Sync() error {
	fs := f.fs
	fs.mu.Lock()
	inject := fs.plan.SyncErrRate > 0 && fs.sync.next() < fs.plan.SyncErrRate
	if inject {
		fs.counts.SyncErrors++
	}
	fs.mu.Unlock()
	if inject {
		metricSyncErrors.Inc()
		return fmt.Errorf("sync %s: %w", f.Name(), ErrIO)
	}
	return f.File.Sync()
}

// Read flips one bit of the returned buffer at the corruption rate,
// modelling bit rot; the read itself succeeds, as rotted reads do.
func (f *faultFile) Read(p []byte) (int, error) {
	n, err := f.File.Read(p)
	if n == 0 {
		return n, err
	}
	fs := f.fs
	fs.mu.Lock()
	inject := fs.plan.ReadCorruptRate > 0 && fs.read.next() < fs.plan.ReadCorruptRate
	var pos int
	var bit uint
	if inject {
		fs.counts.ReadCorruptions++
		pos = int(fs.bitFlip.next() * float64(n))
		if pos >= n {
			pos = n - 1
		}
		bit = uint(fs.bitFlip.next() * 8)
		if bit > 7 {
			bit = 7
		}
	}
	fs.mu.Unlock()
	if inject {
		metricReadCorruptions.Inc()
		p[pos] ^= 1 << bit
	}
	return n, err
}
