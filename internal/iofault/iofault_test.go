package iofault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestPlanValidate(t *testing.T) {
	p := Default(1)
	if err := p.Validate(); err != nil {
		t.Fatalf("Default plan invalid: %v", err)
	}
	bad := Plan{WriteErrRate: 1.5}
	if err := bad.Validate(); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	neg := Plan{SyncErrRate: -0.1}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestZeroPlanPassthrough(t *testing.T) {
	fsys := Wrap(Disk, Plan{Seed: 42})
	if fsys != Disk {
		t.Fatal("zero plan should return the wrapped FS unchanged")
	}
}

// writeAll drives f.Write until n bytes total are attempted, returning the
// first error.
func writeAll(f File, p []byte) error {
	for len(p) > 0 {
		n, err := f.Write(p)
		if err != nil {
			return err
		}
		p = p[n:]
	}
	return nil
}

func TestWriteErrorInjection(t *testing.T) {
	dir := t.TempDir()
	fsys := Wrap(Disk, Plan{Seed: 7, WriteErrRate: 1}).(*FaultFS)
	f, err := fsys.CreateTemp(dir, "w-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.Write([]byte("hello"))
	if n != 0 || !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Write = (%d, %v), want (0, ErrNoSpace)", n, err)
	}
	if c := fsys.Counts(); c.WriteErrors != 1 || c.Total() != 1 {
		t.Fatalf("counts = %+v, want one write error", c)
	}
	info, err := os.Stat(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != 0 {
		t.Fatalf("failed write landed %d bytes", info.Size())
	}
}

func TestShortWriteInjection(t *testing.T) {
	dir := t.TempDir()
	fsys := Wrap(Disk, Plan{Seed: 7, ShortWriteRate: 1}).(*FaultFS)
	f, err := fsys.CreateTemp(dir, "s-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("short write error = %v, want ErrNoSpace", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("short write landed %d bytes, want %d", n, len(payload)/2)
	}
	if c := fsys.Counts(); c.ShortWrites != 1 {
		t.Fatalf("counts = %+v, want one short write", c)
	}
}

func TestSyncErrorInjection(t *testing.T) {
	dir := t.TempDir()
	fsys := Wrap(Disk, Plan{Seed: 7, SyncErrRate: 1}).(*FaultFS)
	f, err := fsys.CreateTemp(dir, "y-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := writeAll(f, []byte("durable?")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrIO) {
		t.Fatalf("Sync = %v, want ErrIO", err)
	}
	if c := fsys.Counts(); c.SyncErrors != 1 {
		t.Fatalf("counts = %+v, want one sync error", c)
	}
}

func TestReadCorruptionInjection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	want := []byte("the quick brown fox jumps over the lazy dog")
	if err := os.WriteFile(path, want, 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := Wrap(Disk, Plan{Seed: 7, ReadCorruptRate: 1}).(*FaultFS)
	f, err := fsys.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d bytes, want %d", len(got), len(want))
	}
	diff := 0
	for i := range got {
		if got[i] != want[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("rate-1 corruption left the buffer intact")
	}
	if fsys.Counts().ReadCorruptions == 0 {
		t.Fatal("no corruption counted")
	}
}

func TestRenameErrorInjection(t *testing.T) {
	dir := t.TempDir()
	oldp := filepath.Join(dir, "old")
	newp := filepath.Join(dir, "new")
	if err := os.WriteFile(oldp, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	fsys := Wrap(Disk, Plan{Seed: 7, RenameErrRate: 1}).(*FaultFS)
	if err := fsys.Rename(oldp, newp); !errors.Is(err, ErrIO) {
		t.Fatalf("Rename = %v, want ErrIO", err)
	}
	if _, err := os.Stat(oldp); err != nil {
		t.Fatalf("failed rename moved the old path: %v", err)
	}
	if _, err := os.Stat(newp); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("failed rename created the new path: %v", err)
	}
	if c := fsys.Counts(); c.RenameErrors != 1 {
		t.Fatalf("counts = %+v, want one rename error", c)
	}
}

// TestDeterministicSchedule pins that two FaultFS instances with the same
// plan inject the identical fault sequence for the identical call
// sequence.
func TestDeterministicSchedule(t *testing.T) {
	run := func() (faults []bool, counts Counts) {
		dir := t.TempDir()
		fsys := Wrap(Disk, Plan{Seed: 99, WriteErrRate: 0.4}).(*FaultFS)
		f, err := fsys.CreateTemp(dir, "d-*")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		for i := 0; i < 64; i++ {
			_, err := f.Write([]byte("abc"))
			faults = append(faults, err != nil)
		}
		return faults, fsys.Counts()
	}
	a, ca := run()
	b, cb := run()
	if ca != cb {
		t.Fatalf("counts diverged: %+v vs %+v", ca, cb)
	}
	if ca.WriteErrors == 0 || ca.WriteErrors == 64 {
		t.Fatalf("rate 0.4 over 64 draws gave %d faults; schedule looks degenerate", ca.WriteErrors)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedule diverged at call %d", i)
		}
	}
}

func TestWrapPanicsOnInvalidPlan(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Wrap accepted an invalid plan")
		}
	}()
	Wrap(Disk, Plan{ReadCorruptRate: 2})
}

func TestRetryBoundedAttempts(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{Attempts: 4, Backoff: time.Millisecond, BackoffMax: 2 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) }}
	calls := 0
	err := p.Do(func() error { calls++; return ErrNoSpace })
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Do = %v, want ErrNoSpace", err)
	}
	if calls != 4 {
		t.Fatalf("op ran %d times, want 4", calls)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 2 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v (doubling capped at BackoffMax)", i, slept[i], want[i])
		}
	}
}

func TestRetrySucceedsMidway(t *testing.T) {
	p := RetryPolicy{Sleep: func(time.Duration) {}}
	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 2 {
			return ErrIO
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if calls != 2 {
		t.Fatalf("op ran %d times, want 2", calls)
	}
}

func TestRetryValidate(t *testing.T) {
	ok := RetryPolicy{}
	if err := ok.Validate(); err != nil {
		t.Fatalf("zero policy invalid: %v", err)
	}
	bad := RetryPolicy{Attempts: -1}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative attempts accepted")
	}
}
