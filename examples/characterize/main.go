// Characterize: profile a real kernel, then explore it in simulation.
//
// The workflow a GreenGPU adopter wants: measure your own divisible
// computation once on real worker pools, derive a simulated-workload
// characterization from the measurement, and then explore energy-
// management policies on the simulated testbed — where a policy sweep
// costs milliseconds instead of re-running the real computation.
//
//	go run ./examples/characterize
package main

import (
	"fmt"
	"log"
	"time"

	"greengpu/internal/bridge"
	"greengpu/internal/core"
	"greengpu/internal/hetero"
	"greengpu/internal/kernels"
	"greengpu/internal/testbed"
	"greengpu/internal/workload"
)

func main() {
	// 1. The real computation: an SRAD diffusion over a speckled image,
	// and two pools with a stable 3:1 speed asymmetry.
	mk := func() kernels.Kernel { return kernels.NewSRAD(64, 64, 40, 21) }
	cpu := &hetero.Pool{Name: "cpu", Workers: 2, ItemDelay: 300 * time.Microsecond}
	acc := &hetero.Pool{Name: "acc", Workers: 4, ItemDelay: 100 * time.Microsecond}

	// 2. Measure it.
	m, err := bridge.Characterize(mk, cpu, acc, bridge.Options{
		CoreUtil: 0.80, MemUtil: 0.50, // srad's Table II class
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured: acc %.1fms/iter, cpu %.1fms/iter -> slowdown %.2fx (balance at %.0f%% CPU)\n",
		ms(m.AccIteration), ms(m.CPUIteration), m.Slowdown, 100/(1+m.Slowdown))

	// 3. Calibrate the derived spec against the simulated testbed.
	profile, err := workload.Calibrate(m.Spec, testbed.GeForce8800GTX(), testbed.PhenomIIX2())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Explore policies in simulation.
	fmt.Println("\nsimulated policy exploration:")
	for _, mode := range []core.Mode{core.Baseline, core.FreqScaling, core.Division, core.Holistic} {
		res, err := core.Run(testbed.New(), profile, core.DefaultConfig(mode))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-18v %7.1f kJ in %6.1f s  (cpu share ends at %.0f%%)\n",
			mode, res.Energy.Joules()/1e3, res.TotalTime.Seconds(), res.FinalRatio*100)
	}

	// 5. Sanity-check the simulation against reality: the real executor's
	// division must converge where the simulation said it would.
	x := hetero.New(mk(), cpu, acc, hetero.Config{})
	rep := x.Run()
	fmt.Printf("\nreal executor converged to %.0f%% CPU (simulation predicted ~%.0f%%)\n",
		rep.FinalRatio*100, 100/(1+m.Slowdown))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
