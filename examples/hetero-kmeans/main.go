// Heterogeneous kmeans: GreenGPU's workload-division tier on real
// computation.
//
// This example clusters an actual synthetic dataset with Lloyd's
// algorithm, splitting every assignment pass between two worker pools of
// different speeds — the same division structure the paper implements
// with pthreads + CUDA (§VI). The division tier starts at a 30% CPU
// share, observes both sides' measured wall-clock times at each reduction
// point, and rebalances in 5% steps until the sides finish together.
//
//	go run ./examples/hetero-kmeans
package main

import (
	"fmt"
	"runtime"
	"time"

	"greengpu/internal/hetero"
	"greengpu/internal/kernels"
	"greengpu/internal/units"
)

func main() {
	// A "CPU" pool and a faster "accelerator" pool. The per-item delay
	// gives the pools a stable 4:1 speed asymmetry so the example
	// behaves the same on any machine; drop the delays to race raw
	// goroutine pools instead.
	cpu := &hetero.Pool{Name: "cpu", Workers: 2, ItemDelay: 8 * time.Microsecond}
	acc := &hetero.Pool{Name: "acc", Workers: runtime.NumCPU(), ItemDelay: 2 * time.Microsecond}

	km := kernels.NewKMeans(20000, 8, 8, 40, 42)

	x := hetero.New(km, cpu, acc, hetero.Config{
		// CPU-side and accelerator-side power envelopes (busy/idle),
		// so the report can estimate the idle-energy reduction that
		// motivates balancing the two sides.
		Energy: &hetero.EnergyModel{
			CPUBusy: 113, CPUIdle: 62,
			AccBusy: 137, AccIdle: 82,
		},
		OnIteration: func(it hetero.IterationStat) {
			fmt.Printf("iter %2d: cpu %5d items (%3.0f%%)  tcpu %7.1fms  tacc %7.1fms\n",
				it.Index+1, it.CPUItems, it.R*100,
				float64(it.TCPU.Microseconds())/1e3,
				float64(it.TAcc.Microseconds())/1e3)
		},
	})
	rep := x.Run()

	fmt.Println()
	fmt.Printf("kmeans converged after %d iterations; inertia %.1f\n", km.Iteration(), km.Cost())
	fmt.Printf("division settled at %.0f/%.0f (CPU/acc); final imbalance %.1f%%\n",
		rep.FinalRatio*100, (1-rep.FinalRatio)*100, rep.Balance()*100)
	fmt.Printf("busy: cpu %v, acc %v; waiting at barriers: cpu %v, acc %v\n",
		rep.CPUBusy.Round(time.Millisecond), rep.AccBusy.Round(time.Millisecond),
		rep.CPUWait.Round(time.Millisecond), rep.AccWait.Round(time.Millisecond))
	fmt.Printf("estimated energy: %s\n", rep.Energy)

	// Contrast with a static 50/50 split: the slower CPU pool drags
	// every iteration and the accelerator idles at each barrier.
	km2 := kernels.NewKMeans(20000, 8, 8, 40, 42)
	var staticEnergy units.Energy
	model := hetero.EnergyModel{CPUBusy: 113, CPUIdle: 62, AccBusy: 137, AccIdle: 82}
	for {
		n := km2.Items()
		half := n / 2
		var tCPU, tAcc time.Duration
		var cpuParts, accParts []any
		done := make(chan struct{})
		go func() {
			t0 := time.Now()
			cpuParts = cpu.Process(km2, 0, half)
			tCPU = time.Since(t0)
			close(done)
		}()
		t0 := time.Now()
		accParts = acc.Process(km2, half, n)
		tAcc = time.Since(t0)
		<-done
		staticEnergy += model.CPUBusy.Over(tCPU) + model.AccBusy.Over(tAcc)
		if tCPU < tAcc {
			staticEnergy += model.CPUIdle.Over(tAcc - tCPU)
		} else {
			staticEnergy += model.AccIdle.Over(tCPU - tAcc)
		}
		if !km2.EndIteration(append(cpuParts, accParts...)) {
			break
		}
	}
	fmt.Printf("\nstatic 50/50 for comparison: %s (%.1f%% more than dynamic division)\n",
		staticEnergy, 100*(float64(staticEnergy)/float64(rep.Energy)-1))
}
