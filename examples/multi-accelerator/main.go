// Multi-accelerator: k-way workload division across three device pools.
//
// The paper's implementation structure — one pthread per GPU, one per CPU
// core (§VI) — generalizes naturally to nodes with several accelerators.
// This example runs the hotspot thermal stencil across three pools of
// different speeds; the k-way divider measures each pool's processing
// rate every iteration and reassigns shares so all pools hit the barrier
// together.
//
//	go run ./examples/multi-accelerator
package main

import (
	"fmt"
	"time"

	"greengpu/internal/hetero"
	"greengpu/internal/kernels"
)

func main() {
	// A CPU pool and two unequal accelerators (per-item delays give the
	// pools a stable 1:2:4 speed ratio, machine-independent).
	pools := []*hetero.Pool{
		{Name: "cpu", Workers: 2, ItemDelay: 400 * time.Microsecond},
		{Name: "gpu0", Workers: 4, ItemDelay: 100 * time.Microsecond},
		{Name: "gpu1", Workers: 4, ItemDelay: 200 * time.Microsecond},
	}

	grid := kernels.NewHotspot(96, 96, 25, 7)
	x := hetero.NewMulti(grid, pools, hetero.MultiConfig{
		OnIteration: func(it hetero.MultiIterationStat) {
			fmt.Printf("iter %2d: shares %3.0f/%3.0f/%3.0f%%  times %6.1f/%6.1f/%6.1fms\n",
				it.Index+1,
				it.Shares[0]*100, it.Shares[1]*100, it.Shares[2]*100,
				ms(it.Times[0]), ms(it.Times[1]), ms(it.Times[2]))
		},
	})
	rep := x.Run()

	fmt.Println()
	fmt.Printf("completed %d timesteps; final shares:", grid.Step())
	for i, s := range rep.FinalShares {
		fmt.Printf("  %s %.0f%%", rep.Pools[i], s*100)
	}
	fmt.Println()
	fmt.Printf("final imbalance %.1f%% of iteration time\n", rep.Imbalance()*100)
	fmt.Printf("peak grid temperature: %.1f\n", grid.MaxTemperature())

	var totalWait time.Duration
	for _, w := range rep.Wait {
		totalWait += w
	}
	fmt.Printf("total barrier idle time across pools: %v (the energy the divider minimizes)\n",
		totalWait.Round(time.Millisecond))
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
