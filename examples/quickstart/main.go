// Quickstart: run the GreenGPU framework on the simulated testbed.
//
// This example assembles the paper's machine (GeForce 8800 GTX-class GPU,
// dual-core Phenom II-class CPU, two wall-power meters), calibrates the
// kmeans workload, and compares the Rodinia default configuration (all
// work on the GPU at peak clocks) against the full holistic framework —
// dynamic CPU/GPU workload division plus coordinated GPU core/memory
// frequency scaling.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"greengpu/internal/core"
	"greengpu/internal/testbed"
	"greengpu/internal/workload"
)

func main() {
	// 1. Calibrate the evaluation workloads against the testbed devices.
	profiles, err := workload.Rodinia(testbed.GeForce8800GTX(), testbed.PhenomIIX2())
	if err != nil {
		log.Fatal(err)
	}
	kmeans, err := workload.ByName(profiles, "kmeans")
	if err != nil {
		log.Fatal(err)
	}

	// 2. Baseline: the Rodinia default — everything on the GPU, every
	// clock pinned at its peak.
	base, err := core.Run(testbed.New(), kmeans, core.DefaultConfig(core.Baseline))
	if err != nil {
		log.Fatal(err)
	}

	// 3. GreenGPU: both tiers on. Tier 1 rebalances each iteration's
	// work between CPU and GPU; tier 2 scales the GPU core and memory
	// clocks from their utilizations (and the CPU via ondemand).
	cfg := core.DefaultConfig(core.Holistic)
	cfg.OnIteration = func(it core.IterationStats) {
		fmt.Printf("iteration %2d: cpu share %3.0f%%  tc %6.1fs  tg %6.1fs  energy %6.2f kJ\n",
			it.Index+1, it.R*100, it.TC.Seconds(), it.TG.Seconds(), it.Energy.Joules()/1e3)
	}
	green, err := core.Run(testbed.New(), kmeans, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Report.
	fmt.Println()
	fmt.Printf("baseline:  %7.1f kJ in %6.1f s (avg %5.1f W)\n",
		base.Energy.Joules()/1e3, base.TotalTime.Seconds(), base.AveragePower().Watts())
	fmt.Printf("greengpu:  %7.1f kJ in %6.1f s (avg %5.1f W)\n",
		green.Energy.Joules()/1e3, green.TotalTime.Seconds(), green.AveragePower().Watts())
	saving := 1 - float64(green.Energy)/float64(base.Energy)
	fmt.Printf("\nGreenGPU saved %.1f%% energy; division converged to %.0f/%.0f (CPU/GPU).\n",
		saving*100, green.FinalRatio*100, (1-green.FinalRatio)*100)
}
