// Fleet: GreenGPU across a simulated GPU cluster.
//
// The paper motivates GPU-CPU energy management with supercomputer-scale
// electricity costs (Tianhe-1A's estimated $2.7M annual bill). This
// example runs a small heterogeneous cluster — every node a GreenGPU
// testbed machine executing a mix of the evaluation workloads — under the
// Rodinia default configuration and under GreenGPU, then aggregates
// fleet-level energy and a projected annual cost.
//
// Policy mirrors the paper's evaluation: long iterative workloads with a
// CPU-side implementation worth engaging (kmeans, hotspot) run the full
// holistic framework; the rest run the frequency-scaling tier alone, where
// division's convergence transient would not amortize over their short
// runs.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"greengpu/internal/core"
	"greengpu/internal/testbed"
	"greengpu/internal/units"
	"greengpu/internal/workload"
)

// job is one queue entry: a workload and the GreenGPU mode chosen for it.
type job struct {
	workload string
	mode     core.Mode
}

// node describes one cluster member's job queue.
type node struct {
	name string
	jobs []job
}

func main() {
	profiles, err := workload.Rodinia(testbed.GeForce8800GTX(), testbed.PhenomIIX2())
	if err != nil {
		log.Fatal(err)
	}

	cluster := []node{
		{name: "node01", jobs: []job{{"kmeans", core.Holistic}, {"streamcluster", core.FreqScaling}}},
		{name: "node02", jobs: []job{{"hotspot", core.Holistic}, {"lud", core.FreqScaling}}},
		{name: "node03", jobs: []job{{"hotspot", core.Holistic}, {"srad_v2", core.FreqScaling}}},
		{name: "node04", jobs: []job{{"kmeans", core.Holistic}, {"PF", core.FreqScaling}}},
	}

	var fleetBase, fleetGreen units.Energy
	fmt.Println("node    workload       mode               baseline kJ  greengpu kJ  saving")
	fmt.Println("------  -------------  -----------------  -----------  -----------  ------")
	for _, n := range cluster {
		for _, j := range n.jobs {
			p, err := workload.ByName(profiles, j.workload)
			if err != nil {
				log.Fatal(err)
			}
			base, err := core.Run(testbed.New(), p, core.DefaultConfig(core.Baseline))
			if err != nil {
				log.Fatal(err)
			}
			green, err := core.Run(testbed.New(), p, core.DefaultConfig(j.mode))
			if err != nil {
				log.Fatal(err)
			}
			fleetBase += base.Energy
			fleetGreen += green.Energy
			fmt.Printf("%-7s %-14s %-18v %11.1f  %11.1f  %5.1f%%\n",
				n.name, j.workload, j.mode,
				base.Energy.Joules()/1e3, green.Energy.Joules()/1e3,
				100*(1-float64(green.Energy)/float64(base.Energy)))
		}
	}

	saving := 1 - float64(fleetGreen)/float64(fleetBase)
	fmt.Println()
	fmt.Printf("fleet energy: %s -> %s (%.1f%% saved)\n", fleetBase, fleetGreen, saving*100)

	// Project the saving onto a continuously loaded 1000-node cluster at
	// a typical industrial tariff. The baseline envelope is ~250 W per
	// node (the two measured wall boundaries combined).
	const (
		nodes        = 1000
		nodeWatts    = 250
		tariffPerKWh = 0.10 // USD
	)
	annualKWh := float64(nodeWatts) / 1000 * nodes * 24 * 365
	annualCost := annualKWh * tariffPerKWh
	fmt.Printf("projected for %d nodes: $%.0fk/yr -> $%.0fk/yr (saves $%.0fk/yr)\n",
		nodes, annualCost/1e3, annualCost*(1-saving)/1e3, annualCost*saving/1e3)
}
