// Streamcluster DVFS: watch the coordinated frequency-scaling tier follow
// a fluctuating workload, reproducing the behaviour of the paper's Fig. 5.
//
// Streamcluster alternates between a memory-heavy phase and a more
// balanced phase. Every 3 simulated seconds the WMA scaler reads the GPU
// core and memory utilizations, charges every core×memory frequency pair a
// loss, and enforces the highest-weighted pair. The trace below shows the
// core clock chasing the phase changes while the memory clock settles
// below its peak — energy saved with near-zero slowdown.
//
//	go run ./examples/streamcluster-dvfs
package main

import (
	"fmt"
	"log"
	"time"

	"greengpu/internal/core"
	"greengpu/internal/dvfs"
	"greengpu/internal/testbed"
	"greengpu/internal/workload"
)

func main() {
	profiles, err := workload.Rodinia(testbed.GeForce8800GTX(), testbed.PhenomIIX2())
	if err != nil {
		log.Fatal(err)
	}
	sc, err := workload.ByName(profiles, "streamcluster")
	if err != nil {
		log.Fatal(err)
	}

	machine := testbed.New()
	gpu := machine.GPU

	cfg := core.DefaultConfig(core.FreqScaling)
	cfg.Iterations = 6
	fmt.Println("   t      u_core  u_mem   ->  core     memory")
	cfg.OnDVFS = func(at time.Duration, uc, um float64, d dvfs.Decision) {
		fmt.Printf("%5.0fs   %5.2f   %5.2f   ->  %v  %v\n",
			at.Seconds(), uc, um,
			gpu.CoreLevels()[d.CoreLevel], gpu.MemLevels()[d.MemLevel])
	}
	scaled, err := core.Run(machine, sc, cfg)
	if err != nil {
		log.Fatal(err)
	}

	base, err := core.Run(testbed.New(), sc, func() core.Config {
		c := core.DefaultConfig(core.Baseline)
		c.Iterations = 6
		return c
	}())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Printf("best-performance: %7.1f kJ GPU energy in %5.1f s\n",
		base.EnergyGPU.Joules()/1e3, base.TotalTime.Seconds())
	fmt.Printf("with scaling:     %7.1f kJ GPU energy in %5.1f s\n",
		scaled.EnergyGPU.Joules()/1e3, scaled.TotalTime.Seconds())
	saving := 1 - float64(scaled.EnergyGPU)/float64(base.EnergyGPU)
	slowdown := float64(scaled.TotalTime)/float64(base.TotalTime) - 1
	fmt.Printf("\nsaved %.1f%% GPU energy for %.1f%% longer execution.\n", saving*100, slowdown*100)
}
