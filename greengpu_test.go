package greengpu

import (
	"math"
	"testing"
	"time"

	"greengpu/internal/kernels"
)

// kernelFactoryForFacade builds the real kernel the facade tests run.
func kernelFactoryForFacade() Kernel {
	return kernels.NewHotspot(48, 48, 30, 7)
}

// These tests exercise the public facade exactly as README's quick start
// does, so the documented entry points cannot rot.

func TestQuickStartFlow(t *testing.T) {
	profiles, err := Rodinia()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 9 {
		t.Fatalf("Rodinia returned %d profiles, want 9", len(profiles))
	}
	kmeans, err := Profile(profiles, "kmeans")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(NewTestbed(), kmeans, DefaultConfig(Holistic))
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy <= 0 {
		t.Error("no energy accounted")
	}
	if math.Abs(res.FinalRatio-0.20) > 0.051 {
		t.Errorf("kmeans converged to %v, want ~0.20", res.FinalRatio)
	}
}

func TestFacadeModes(t *testing.T) {
	profiles, err := Rodinia()
	if err != nil {
		t.Fatal(err)
	}
	hotspot, err := Profile(profiles, "hotspot")
	if err != nil {
		t.Fatal(err)
	}
	var energies []float64
	for _, mode := range []Mode{Baseline, FreqScaling, Division, Holistic} {
		cfg := DefaultConfig(mode)
		cfg.Iterations = 8
		res, err := Run(NewTestbed(), hotspot, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		energies = append(energies, float64(res.Energy))
	}
	// The paper's ordering: holistic cheapest, baseline most expensive.
	if energies[3] >= energies[0] {
		t.Errorf("holistic (%v) not cheaper than baseline (%v)", energies[3], energies[0])
	}
	if energies[3] >= energies[2] {
		t.Errorf("holistic (%v) not cheaper than division-only (%v)", energies[3], energies[2])
	}
	if energies[3] >= energies[1] {
		t.Errorf("holistic (%v) not cheaper than frequency-scaling-only (%v)", energies[3], energies[1])
	}
}

func TestNewExperiments(t *testing.T) {
	env, err := NewExperiments()
	if err != nil {
		t.Fatal(err)
	}
	res, err := env.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Errorf("Table2 rows = %d", len(res.Rows))
	}
}

func TestProfileMissing(t *testing.T) {
	profiles, err := Rodinia()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Profile(profiles, "not-a-workload"); err == nil {
		t.Error("missing workload accepted")
	}
}

// TestDeterminism: two identical runs must agree exactly — the simulated
// testbed is a deterministic discrete-event system, which is what makes
// every number in EXPERIMENTS.md reproducible.
func TestDeterminism(t *testing.T) {
	run := func() *Result {
		profiles, err := Rodinia()
		if err != nil {
			t.Fatal(err)
		}
		p, err := Profile(profiles, "hotspot")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(NewTestbed(), p, DefaultConfig(Holistic))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Energy != b.Energy || a.TotalTime != b.TotalTime || a.FinalRatio != b.FinalRatio {
		t.Fatalf("runs differ: (%v,%v,%v) vs (%v,%v,%v)",
			a.Energy, a.TotalTime, a.FinalRatio, b.Energy, b.TotalTime, b.FinalRatio)
	}
	if len(a.Iterations) != len(b.Iterations) {
		t.Fatalf("iteration counts differ")
	}
	for i := range a.Iterations {
		if a.Iterations[i] != b.Iterations[i] {
			t.Fatalf("iteration %d differs: %+v vs %+v", i, a.Iterations[i], b.Iterations[i])
		}
	}
}

// TestRealComputeFacade exercises the real-compute plane through the
// public facade: characterize a kernel, calibrate it, run it in
// simulation, and run it for real.
func TestRealComputeFacade(t *testing.T) {
	mk := func() Kernel { return kernelFactoryForFacade() }
	cpu := &Pool{Name: "cpu", Workers: 1, ItemDelay: 800 * time.Microsecond}
	acc := &Pool{Name: "acc", Workers: 1, ItemDelay: 200 * time.Microsecond}

	m, err := Characterize(mk, cpu, acc, CharacterizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Slowdown < 2.5 || m.Slowdown > 5.5 {
		t.Errorf("slowdown %.2f, want ~4", m.Slowdown)
	}
	p, err := Calibrate(m.Spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(Division)
	cfg.Iterations = 10
	res, err := Run(NewTestbed(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalRatio < 0.10 || res.FinalRatio > 0.30 {
		t.Errorf("simulated convergence %.2f outside the measured band", res.FinalRatio)
	}

	x := NewHeteroExecutor(mk(), cpu, acc, HeteroConfig{})
	rep := x.Run()
	if rep.FinalRatio < 0.10 || rep.FinalRatio > 0.30 {
		t.Errorf("real convergence %.2f outside the measured band", rep.FinalRatio)
	}
}

// TestMultiExecutorFacade exercises the k-way entry point.
func TestMultiExecutorFacade(t *testing.T) {
	x := NewMultiExecutor(kernelFactoryForFacade(), []*Pool{
		{Name: "a", Workers: 1}, {Name: "b", Workers: 2},
	}, MultiConfig{MaxIterations: 3})
	rep := x.Run()
	if len(rep.Iterations) != 3 {
		t.Errorf("ran %d iterations", len(rep.Iterations))
	}
}
