package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"greengpu/internal/experiments"
	"greengpu/internal/trace"
)

// testEnv is built once: calibration is deterministic and the environment
// is immutable, so all runner tests can share it.
var (
	testEnvOnce sync.Once
	testEnv     *experiments.Env
)

func env(t *testing.T) *experiments.Env {
	t.Helper()
	testEnvOnce.Do(func() {
		e, err := experiments.NewEnv()
		if err != nil {
			t.Fatalf("NewEnv: %v", err)
		}
		testEnv = e
	})
	return testEnv
}

func TestRegisterFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	o := registerFlags(fs)
	args := []string{
		"-run", "fig1,fig2",
		"-out", "res",
		"-markdown",
		"-jobs", "3",
		"-cpuprofile", "cpu.out",
		"-memprofile", "mem.out",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := options{run: "fig1,fig2", out: "res", markdown: true, jobs: 3,
		cpuprofile: "cpu.out", memprofile: "mem.out"}
	if *o != want {
		t.Errorf("parsed options = %+v, want %+v", *o, want)
	}
}

func TestRegisterFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	o := registerFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := options{run: "all"}
	if *o != want {
		t.Errorf("default options = %+v, want %+v", *o, want)
	}
	// Every option field must be reachable from the command line.
	for _, name := range []string{"run", "out", "markdown", "jobs", "cpuprofile", "memprofile"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := startProfiles(cpu, mem)
	if err != nil {
		t.Fatalf("startProfiles: %v", err)
	}
	// Do a little work so the CPU profile has something to record.
	sink := 0
	for i := 0; i < 1e6; i++ {
		sink += i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, name := range []string{cpu, mem} {
		fi, err := os.Stat(name)
		if err != nil {
			t.Errorf("profile %s not written: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}
}

func TestStartProfilesNoop(t *testing.T) {
	stop, err := startProfiles("", "")
	if err != nil {
		t.Fatalf("startProfiles: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestRunOneUnknownID(t *testing.T) {
	r := &runner{env: env(t), stdout: &bytes.Buffer{}}
	err := r.runOne("nope")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	if !strings.Contains(err.Error(), `"nope"`) {
		t.Errorf("error %q does not name the bad id", err)
	}
}

func TestAllIDsAreRouted(t *testing.T) {
	// Every id the "all" suite dispatches must have a handler, and every
	// handler must be reachable from the suite — no dead or missing ids.
	if len(allIDs) != len(handlers) {
		t.Errorf("allIDs has %d ids, handlers has %d", len(allIDs), len(handlers))
	}
	seen := map[string]bool{}
	for _, id := range allIDs {
		if seen[id] {
			t.Errorf("duplicate id %q in allIDs", id)
		}
		seen[id] = true
		if _, ok := handlers[id]; !ok {
			t.Errorf("id %q in allIDs has no handler", id)
		}
	}
	for id := range handlers {
		if !seen[id] {
			t.Errorf("handler %q unreachable from the all suite", id)
		}
	}
}

func TestRunOneTable2WritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	r := &runner{env: env(t), outDir: dir, stdout: &out}
	if err := r.runOne("table2"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kmeans") {
		t.Error("stdout table missing workload rows")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "table2.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if !strings.Contains(string(csv), "kmeans") {
		t.Error("CSV missing workload rows")
	}
}

func TestRunOneRespectsJobs(t *testing.T) {
	// The runner must work for any worker count and produce identical
	// output (the engine's determinism guarantee, exercised end-to-end
	// through the dispatch path).
	render := func(jobs int) string {
		e := *env(t)
		e.Jobs = jobs
		var out bytes.Buffer
		r := &runner{env: &e, stdout: &out}
		if err := r.runOne("table2"); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if seq, par := render(1), render(8); seq != par {
		t.Error("table2 output differs between -jobs 1 and -jobs 8")
	}
}

func TestEmitNumbersMultipleTables(t *testing.T) {
	dir := t.TempDir()
	r := &runner{outDir: dir, stdout: &bytes.Buffer{}}
	t1 := trace.NewTable("one", "a")
	t1.AddRow("1")
	t2 := trace.NewTable("two", "b")
	t2.AddRow("2")
	if err := r.emit("x", t1, t2); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"x_1.csv", "x_2.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	// A single table keeps the bare id.
	if err := r.emit("y", t1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "y.csv")); err != nil {
		t.Errorf("missing y.csv: %v", err)
	}
}

func TestEmitMarkdown(t *testing.T) {
	var out bytes.Buffer
	r := &runner{markdown: true, stdout: &out}
	tb := trace.NewTable("title", "col")
	tb.AddRow("v")
	if err := r.emit("z", tb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "|") {
		t.Error("markdown rendering produced no table pipes")
	}
}
