package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"greengpu/internal/experiments"
	"greengpu/internal/telemetry"
	"greengpu/internal/trace"
)

// testEnv is built once: calibration is deterministic and the environment
// is immutable, so all runner tests can share it.
var (
	testEnvOnce sync.Once
	testEnv     *experiments.Env
)

func env(t *testing.T) *experiments.Env {
	t.Helper()
	testEnvOnce.Do(func() {
		e, err := experiments.NewEnv()
		if err != nil {
			t.Fatalf("NewEnv: %v", err)
		}
		testEnv = e
	})
	return testEnv
}

func TestRegisterFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	o := registerFlags(fs)
	args := []string{
		"-run", "fig1,fig2",
		"-sweep", "workloads=kmeans",
		"-fleet", "nodes=100",
		"-predict-strategy", "adaptive",
		"-predict-topm", "12",
		"-out", "res",
		"-markdown",
		"-jobs", "3",
		"-cpuprofile", "cpu.out",
		"-memprofile", "mem.out",
		"-no-cache",
		"-cache-dir", ".cache",
		"-cache-max-bytes", "1048576",
		"-bench-cache", "bench.json",
		"-faults", "default",
		"-metrics", "m.prom",
		"-metrics-json", "m.json",
		"-flight-recorder", "64",
		"-flight-recorder-out", "flight.json",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := options{run: "fig1,fig2", sweep: "workloads=kmeans",
		fleet:           "nodes=100",
		predictStrategy: "adaptive", predictTopM: 12,
		out: "res", markdown: true, jobs: 3,
		cpuprofile: "cpu.out", memprofile: "mem.out",
		noCache: true, cacheDir: ".cache", cacheMaxBytes: 1048576, benchCache: "bench.json",
		faults: "default", metrics: "m.prom", metricsJSON: "m.json",
		flightRec: 64, flightOut: "flight.json"}
	if *o != want {
		t.Errorf("parsed options = %+v, want %+v", *o, want)
	}
}

func TestRegisterFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	o := registerFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := options{run: "all", faults: "off", predictStrategy: "corners"}
	if *o != want {
		t.Errorf("default options = %+v, want %+v", *o, want)
	}
	// Every option field must be reachable from the command line.
	for _, name := range []string{"run", "sweep", "predict", "fleet", "predict-strategy", "predict-topm", "out", "markdown", "jobs", "cpuprofile", "memprofile", "no-cache", "cache-dir", "cache-max-bytes", "bench-cache", "faults", "metrics", "metrics-json", "flight-recorder", "flight-recorder-out"} {
		if fs.Lookup(name) == nil {
			t.Errorf("flag -%s not registered", name)
		}
	}
}

func TestStartProfilesWritesFiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	stop, err := startProfiles(cpu, mem)
	if err != nil {
		t.Fatalf("startProfiles: %v", err)
	}
	// Do a little work so the CPU profile has something to record.
	sink := 0
	for i := 0; i < 1e6; i++ {
		sink += i
	}
	_ = sink
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
	for _, name := range []string{cpu, mem} {
		fi, err := os.Stat(name)
		if err != nil {
			t.Errorf("profile %s not written: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}
}

func TestStartProfilesNoop(t *testing.T) {
	stop, err := startProfiles("", "")
	if err != nil {
		t.Fatalf("startProfiles: %v", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}
}

func TestRunOneUnknownID(t *testing.T) {
	r := &runner{env: env(t), stdout: &bytes.Buffer{}}
	err := r.runOne("nope")
	if err == nil {
		t.Fatal("unknown id accepted")
	}
	if !strings.Contains(err.Error(), `"nope"`) {
		t.Errorf("error %q does not name the bad id", err)
	}
}

func TestAllIDsAreRouted(t *testing.T) {
	// Every id the "all" suite dispatches must have a handler, and every
	// handler must be reachable from the suite — no dead or missing ids.
	if len(allIDs) != len(handlers) {
		t.Errorf("allIDs has %d ids, handlers has %d", len(allIDs), len(handlers))
	}
	seen := map[string]bool{}
	for _, id := range allIDs {
		if seen[id] {
			t.Errorf("duplicate id %q in allIDs", id)
		}
		seen[id] = true
		if _, ok := handlers[id]; !ok {
			t.Errorf("id %q in allIDs has no handler", id)
		}
	}
	for id := range handlers {
		if !seen[id] {
			t.Errorf("handler %q unreachable from the all suite", id)
		}
	}
}

func TestRunOneTable2WritesCSV(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	r := &runner{env: env(t), outDir: dir, stdout: &out}
	if err := r.runOne("table2"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "kmeans") {
		t.Error("stdout table missing workload rows")
	}
	csv, err := os.ReadFile(filepath.Join(dir, "table2.csv"))
	if err != nil {
		t.Fatalf("CSV not written: %v", err)
	}
	if !strings.Contains(string(csv), "kmeans") {
		t.Error("CSV missing workload rows")
	}
}

func TestRunOneRespectsJobs(t *testing.T) {
	// The runner must work for any worker count and produce identical
	// output (the engine's determinism guarantee, exercised end-to-end
	// through the dispatch path).
	render := func(jobs int) string {
		e := *env(t)
		e.Jobs = jobs
		var out bytes.Buffer
		r := &runner{env: &e, stdout: &out}
		if err := r.runOne("table2"); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if seq, par := render(1), render(8); seq != par {
		t.Error("table2 output differs between -jobs 1 and -jobs 8")
	}
}

func TestEmitNumbersMultipleTables(t *testing.T) {
	dir := t.TempDir()
	r := &runner{outDir: dir, stdout: &bytes.Buffer{}}
	t1 := trace.NewTable("one", "a")
	t1.AddRow("1")
	t2 := trace.NewTable("two", "b")
	t2.AddRow("2")
	if err := r.emit("x", t1, t2); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"x_1.csv", "x_2.csv"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing %s: %v", name, err)
		}
	}
	// A single table keeps the bare id.
	if err := r.emit("y", t1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "y.csv")); err != nil {
		t.Errorf("missing y.csv: %v", err)
	}
}

// suiteOutput runs the full experiment suite through the real run()
// entrypoint and returns stdout plus every CSV, keyed by file name.
func suiteOutput(t *testing.T, jobs int, noCache bool, cacheDir string) (string, map[string]string) {
	t.Helper()
	outDir := t.TempDir()
	var stdout bytes.Buffer
	o := &options{run: "all", out: outDir, jobs: jobs, noCache: noCache, cacheDir: cacheDir}
	if err := run(o, &stdout, io.Discard); err != nil {
		t.Fatalf("run(jobs=%d noCache=%v dir=%q): %v", jobs, noCache, cacheDir, err)
	}
	csvs := map[string]string{}
	entries, err := os.ReadDir(outDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(outDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		csvs[e.Name()] = string(data)
	}
	return stdout.String(), csvs
}

// TestSuiteDeterminismAcrossCacheModes is the acceptance matrix: the full
// suite's stdout and CSVs must be byte-identical for -jobs 1 vs -jobs 8,
// cache on vs off, and cold vs warm disk cache. The cache must be an
// invisible accelerator — any divergence means a cached result leaked
// state or a fingerprint conflated two configurations.
func TestSuiteDeterminismAcrossCacheModes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full suite six times")
	}
	diskDir := t.TempDir()
	baseOut, baseCSV := suiteOutput(t, 1, true, "") // sequential, no cache
	combos := []struct {
		name     string
		jobs     int
		noCache  bool
		cacheDir string
	}{
		{"jobs8 no cache", 8, true, ""},
		{"jobs1 memory cache", 1, false, ""},
		{"jobs8 memory cache", 8, false, ""},
		{"jobs8 disk cache cold", 8, false, diskDir},
		{"jobs8 disk cache warm", 8, false, diskDir}, // reuses diskDir populated above
	}
	for _, c := range combos {
		gotOut, gotCSV := suiteOutput(t, c.jobs, c.noCache, c.cacheDir)
		if gotOut != baseOut {
			t.Errorf("%s: stdout differs from sequential no-cache run", c.name)
		}
		if len(gotCSV) != len(baseCSV) {
			t.Errorf("%s: %d CSVs, want %d", c.name, len(gotCSV), len(baseCSV))
		}
		for name, want := range baseCSV {
			if gotCSV[name] != want {
				t.Errorf("%s: %s differs from sequential no-cache run", c.name, name)
			}
		}
	}
}

// TestTelemetryAcceptance runs a real experiment with every telemetry flag
// set and checks the whole contract at once: stdout stays byte-identical to
// a plain run, the Prometheus snapshot is well-formed and covers the
// headline counters, the JSON snapshot parses, the flight recorder retains
// bounded records, and the process-global telemetry state is restored.
func TestTelemetryAcceptance(t *testing.T) {
	plain := func() string {
		var out bytes.Buffer
		if err := run(&options{run: "fig6"}, &out, io.Discard); err != nil {
			t.Fatalf("plain run: %v", err)
		}
		return out.String()
	}()

	dir := t.TempDir()
	o := &options{
		run:         "fig6",
		metrics:     filepath.Join(dir, "m.prom"),
		metricsJSON: filepath.Join(dir, "m.json"),
		flightRec:   32,
		flightOut:   filepath.Join(dir, "flight.json"),
	}
	var out, errOut bytes.Buffer
	if err := run(o, &out, &errOut); err != nil {
		t.Fatalf("telemetry run: %v", err)
	}
	if out.String() != plain {
		t.Error("stdout differs between plain and telemetry-enabled runs")
	}
	if telemetry.Enabled() {
		t.Error("telemetry left enabled after run")
	}
	if telemetry.Recorder() != nil {
		t.Error("flight recorder left installed after run")
	}

	prom, err := os.ReadFile(o.metrics)
	if err != nil {
		t.Fatalf("Prometheus snapshot not written: %v", err)
	}
	for _, name := range []string{
		"greengpu_runcache_hits_total",
		"greengpu_runcache_misses_total",
		"greengpu_runcache_single_flight_waits_total",
		"greengpu_parallel_tasks_total",
		"greengpu_parallel_task_errors_total",
		"greengpu_dvfs_steps_total",
	} {
		if !regexp.MustCompile(`(?m)^` + name + ` \d+$`).Match(prom) {
			t.Errorf("Prometheus snapshot missing sample line for %s", name)
		}
		if !bytes.Contains(prom, []byte("# TYPE "+name+" counter")) {
			t.Errorf("Prometheus snapshot missing TYPE line for %s", name)
		}
	}
	// Every non-comment line must be a well-formed sample.
	sample := regexp.MustCompile(`^[a-z_]+(\{le="[^"]+"\})? -?[0-9+.eInf-]+$`)
	for _, line := range strings.Split(strings.TrimRight(string(prom), "\n"), "\n") {
		if strings.HasPrefix(line, "# ") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("malformed Prometheus sample line %q", line)
		}
	}

	var snaps []telemetry.MetricSnapshot
	data, err := os.ReadFile(o.metricsJSON)
	if err != nil {
		t.Fatalf("JSON snapshot not written: %v", err)
	}
	if err := json.Unmarshal(data, &snaps); err != nil {
		t.Fatalf("JSON snapshot does not parse: %v", err)
	}
	if len(snaps) == 0 {
		t.Error("JSON snapshot is empty")
	}

	var recs []telemetry.EpochRecord
	data, err = os.ReadFile(o.flightOut)
	if err != nil {
		t.Fatalf("flight-recorder dump not written: %v", err)
	}
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatalf("flight-recorder dump does not parse: %v", err)
	}
	if len(recs) == 0 || len(recs) > o.flightRec {
		t.Errorf("flight recorder retained %d records, want 1..%d", len(recs), o.flightRec)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Errorf("flight records not consecutive at %d: seq %d after %d", i, recs[i].Seq, recs[i-1].Seq)
		}
	}
}

// TestTelemetryFailureDumpsFlightRecorder checks the anomaly path: a run
// that fails with a flight recorder installed renders the retained epochs
// to stderr.
func TestTelemetryFailureDumpsFlightRecorder(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run(&options{run: "fig6,bogus", flightRec: 8}, &out, &errOut)
	if err == nil {
		t.Fatal("bogus experiment id accepted")
	}
	if !strings.Contains(errOut.String(), "dumping flight recorder") {
		t.Error("failed run did not announce the flight-recorder dump")
	}
	if !strings.Contains(errOut.String(), "u_core") {
		t.Error("flight-recorder table missing from stderr")
	}
	if telemetry.Enabled() || telemetry.Recorder() != nil {
		t.Error("telemetry state not restored after failed run")
	}
}

func TestTelemetryFlagValidation(t *testing.T) {
	cases := []options{
		{run: "fig6", flightOut: "f.json"}, // out without recorder
		{run: "fig6", flightRec: -1},       // negative retention
	}
	for _, o := range cases {
		if err := run(&o, io.Discard, io.Discard); err == nil {
			t.Errorf("options %+v accepted, want error", o)
		}
	}
}

func TestEmitMarkdown(t *testing.T) {
	var out bytes.Buffer
	r := &runner{markdown: true, stdout: &out}
	tb := trace.NewTable("title", "col")
	tb.AddRow("v")
	if err := r.emit("z", tb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "|") {
		t.Error("markdown rendering produced no table pipes")
	}
}

// sweepOutput runs an ad-hoc -sweep through the real run() entrypoint.
func sweepOutput(t *testing.T, spec string, jobs int, noCache bool) string {
	t.Helper()
	var stdout bytes.Buffer
	o := &options{run: "all", sweep: spec, jobs: jobs, noCache: noCache, faults: "off"}
	if err := run(o, &stdout, io.Discard); err != nil {
		t.Fatalf("run(-sweep %q jobs=%d): %v", spec, jobs, err)
	}
	return stdout.String()
}

// TestSweepFlagDeterminism pins the -sweep contract end-to-end: the paper's
// full 6×6 kmeans ladder renders byte-identically at -jobs 1 vs -jobs 8 and
// with the cache on vs off.
func TestSweepFlagDeterminism(t *testing.T) {
	const spec = "workloads=kmeans core=all mem=all iters=4"
	base := sweepOutput(t, spec, 1, true)
	if !strings.Contains(base, "kmeans") {
		t.Fatal("sweep output missing workload rows")
	}
	for _, c := range []struct {
		jobs    int
		noCache bool
	}{{8, true}, {1, false}, {8, false}} {
		if got := sweepOutput(t, spec, c.jobs, c.noCache); got != base {
			t.Errorf("-sweep output diverges at jobs=%d noCache=%v", c.jobs, c.noCache)
		}
	}
}

func TestSweepFlagBadSpec(t *testing.T) {
	o := &options{run: "all", sweep: "core=bogus", faults: "off", noCache: true}
	if err := run(o, io.Discard, io.Discard); err == nil {
		t.Error("bad -sweep spec accepted")
	}
}

// fleetOutput runs an ad-hoc -fleet through the real run() entrypoint,
// returning stdout and stderr separately.
func fleetOutput(t *testing.T, spec string, jobs int, noCache bool) (string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	o := &options{run: "all", fleet: spec, jobs: jobs, noCache: noCache, faults: "off"}
	if err := run(o, &stdout, &stderr); err != nil {
		t.Fatalf("run(-fleet %q jobs=%d): %v", spec, jobs, err)
	}
	return stdout.String(), stderr.String()
}

// TestFleetFlagDeterminism pins the -fleet contract end-to-end: stdout is
// byte-identical at -jobs 1 vs -jobs 8 and with the cache on vs off, while
// the dedup economics land on stderr only — emitting them must never
// perturb the deterministic tables.
func TestFleetFlagDeterminism(t *testing.T) {
	const spec = "nodes=2000 workloads=kmeans,lud modes=baseline,holistic faults=0,2"
	base, baseErr := fleetOutput(t, spec, 1, true)
	if !strings.Contains(base, "kmeans") || !strings.Contains(base, "Fleet summary") {
		t.Fatal("fleet output missing group or summary tables")
	}
	if !strings.Contains(baseErr, "distinct groups") {
		t.Error("fleet stderr missing the dedup summary line")
	}
	if !strings.Contains(baseErr, "-> 1 simulation") {
		t.Error("fleet stderr missing per-group collapse lines")
	}
	if strings.Contains(base, "distinct groups") || strings.Contains(base, "-> 1 simulation") {
		t.Error("dedup economics leaked onto stdout")
	}
	for _, c := range []struct {
		jobs    int
		noCache bool
	}{{8, true}, {1, false}, {8, false}} {
		got, gotErr := fleetOutput(t, spec, c.jobs, c.noCache)
		if got != base {
			t.Errorf("-fleet stdout diverges at jobs=%d noCache=%v", c.jobs, c.noCache)
		}
		if !c.noCache && !strings.Contains(gotErr, "fleet cache delta") {
			t.Errorf("cached fleet run (jobs=%d) missing the cache delta line", c.jobs)
		}
	}
}

func TestFleetFlagBadSpec(t *testing.T) {
	o := &options{run: "all", fleet: "nodes=0", faults: "off", noCache: true}
	if err := run(o, io.Discard, io.Discard); err == nil {
		t.Error("bad -fleet spec accepted")
	}
}

func TestAdhocFlagsMutuallyExclusive(t *testing.T) {
	for _, o := range []options{
		{run: "all", sweep: "workloads=kmeans", fleet: "nodes=10", noCache: true, faults: "off"},
		{run: "all", predict: "workloads=kmeans", fleet: "nodes=10", noCache: true, faults: "off"},
		{run: "all", sweep: "workloads=kmeans", predict: "workloads=kmeans", noCache: true, faults: "off"},
	} {
		if err := run(&o, io.Discard, io.Discard); err == nil {
			t.Errorf("options %+v accepted, want mutual-exclusion error", o)
		}
	}
}

// TestFleetStudyCSVDeterminism is the CI fleet job's matrix in miniature:
// results/fleet_study.csv must be byte-identical across worker counts and
// cache modes, cold and warm.
func TestFleetStudyCSVDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 100k-node fleet study five times")
	}
	study := func(jobs int, noCache bool, cacheDir string) string {
		outDir := t.TempDir()
		o := &options{run: "fleet", out: outDir, jobs: jobs, noCache: noCache, cacheDir: cacheDir, faults: "off"}
		if err := run(o, io.Discard, io.Discard); err != nil {
			t.Fatalf("run(-run fleet jobs=%d): %v", jobs, err)
		}
		data, err := os.ReadFile(filepath.Join(outDir, "fleet_study.csv"))
		if err != nil {
			t.Fatalf("fleet_study.csv not written: %v", err)
		}
		return string(data)
	}
	diskDir := t.TempDir()
	base := study(1, true, "")
	for _, c := range []struct {
		name     string
		jobs     int
		noCache  bool
		cacheDir string
	}{
		{"jobs8 no cache", 8, true, ""},
		{"jobs8 memory cache", 8, false, ""},
		{"jobs8 disk cache cold", 8, false, diskDir},
		{"jobs8 disk cache warm", 8, false, diskDir},
	} {
		if got := study(c.jobs, c.noCache, c.cacheDir); got != base {
			t.Errorf("%s: fleet_study.csv differs from sequential no-cache run", c.name)
		}
	}
	if !strings.Contains(base, "100000") {
		t.Error("fleet_study.csv missing the 100k-node rows")
	}
}
