// Command experiments regenerates every table and figure of the GreenGPU
// evaluation on the simulated testbed, printing text tables and optionally
// writing CSV files.
//
// Usage:
//
//	experiments                     # run everything
//	experiments -run fig6           # one experiment
//	experiments -out results        # also write results/<id>*.csv
//
// Experiment ids: fig1, fig2, fig5, fig6, fig7, fig8, table2, sweep,
// ablations, extensions, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"greengpu/internal/experiments"
	"greengpu/internal/trace"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiment id (fig1 fig2 fig5 fig6 fig7 fig8 table2 sweep ablations extensions all)")
		out      = flag.String("out", "", "directory for CSV output (empty = none)")
		markdown = flag.Bool("markdown", false, "render tables as GitHub markdown instead of aligned text")
	)
	flag.Parse()

	env, err := experiments.NewEnv()
	if err != nil {
		fatal(err)
	}
	r := &runner{env: env, outDir: *out, markdown: *markdown}
	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
	}

	ids := strings.Split(*run, ",")
	if *run == "all" {
		ids = []string{"table2", "fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "sweep", "ablations", "extensions"}
	}
	for _, id := range ids {
		if err := r.runOne(strings.TrimSpace(id)); err != nil {
			fatal(err)
		}
	}
}

type runner struct {
	env      *experiments.Env
	outDir   string
	markdown bool
}

func (r *runner) emit(id string, tables ...*trace.Table) error {
	for i, t := range tables {
		render := t.WriteText
		if r.markdown {
			render = t.WriteMarkdown
		}
		if err := render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if r.outDir != "" {
			name := id
			if len(tables) > 1 {
				name = fmt.Sprintf("%s_%d", id, i+1)
			}
			f, err := os.Create(filepath.Join(r.outDir, name+".csv"))
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *runner) runOne(id string) error {
	switch id {
	case "fig1":
		res, err := r.env.Fig1()
		if err != nil {
			return err
		}
		return r.emit(id, res.Table())
	case "fig2":
		res, err := r.env.Fig2()
		if err != nil {
			return err
		}
		return r.emit(id, res.Table())
	case "fig5":
		res, err := r.env.Fig5()
		if err != nil {
			return err
		}
		if err := r.emit(id, res.Table(), res.PowerTable()); err != nil {
			return err
		}
		fmt.Println(res.Sparklines())
		return nil
	case "fig6":
		res, err := r.env.Fig6()
		if err != nil {
			return err
		}
		return r.emit(id, res.Table())
	case "fig7":
		var tables []*trace.Table
		for _, name := range []string{"kmeans", "hotspot"} {
			res, err := r.env.Fig7(name)
			if err != nil {
				return err
			}
			tables = append(tables, res.Table())
		}
		return r.emit(id, tables...)
	case "fig8":
		var tables []*trace.Table
		for _, name := range []string{"hotspot", "kmeans"} {
			res, err := r.env.Fig8(name)
			if err != nil {
				return err
			}
			tables = append(tables, res.Table())
		}
		return r.emit(id, tables...)
	case "table2":
		res, err := r.env.Table2()
		if err != nil {
			return err
		}
		return r.emit(id, res.Table())
	case "sweep":
		res, err := r.env.StaticSweep("kmeans", "hotspot")
		if err != nil {
			return err
		}
		return r.emit(id, res.Table())
	case "ablations":
		tables, err := r.env.AblationTables("kmeans")
		if err != nil {
			return err
		}
		return r.emit(id, tables...)
	case "extensions":
		var tables []*trace.Table
		drows, err := r.env.DividerComparison("kmeans", "hotspot")
		if err != nil {
			return err
		}
		tables = append(tables, experiments.DividerComparisonTable(drows))
		arows, err := r.env.AsyncValidation("kmeans", "lud", "PF")
		if err != nil {
			return err
		}
		tables = append(tables, experiments.AsyncValidationTable(arows))
		frows, err := r.env.ActuatorFaults("kmeans")
		if err != nil {
			return err
		}
		tables = append(tables, experiments.ActuatorFaultsTable("kmeans", frows))
		prows, err := r.env.Portability()
		if err != nil {
			return err
		}
		tables = append(tables, experiments.PortabilityTable(prows))
		xrows, err := r.env.Fixed8Comparison()
		if err != nil {
			return err
		}
		tables = append(tables, experiments.Fixed8ComparisonTable(xrows))
		crows, err := r.env.CPUCapability("kmeans", "hotspot")
		if err != nil {
			return err
		}
		tables = append(tables, experiments.CPUCapabilityTable(crows))
		srows, err := r.env.SMComparison()
		if err != nil {
			return err
		}
		tables = append(tables, experiments.SMComparisonTable(srows))
		return r.emit(id, tables...)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
