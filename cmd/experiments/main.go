// Command experiments regenerates every table and figure of the GreenGPU
// evaluation on the simulated testbed, printing text tables and optionally
// writing CSV files.
//
// Usage:
//
//	experiments                     # run everything, one worker per CPU
//	experiments -run fig6           # one experiment
//	experiments -out results        # also write results/<id>*.csv
//	experiments -jobs 1             # force sequential execution
//
// Experiment ids: fig1, fig2, fig5, fig6, fig7, fig8, table2, sweep,
// sweetspot, predict, ablations, extensions, resilience, fleet, all.
//
// Ad-hoc batch sweeps bypass the predefined studies: -sweep takes a
// key=value spec (see internal/sweep.ParseSpec) and evaluates the whole
// batch through the massive-sweep engine — shared level tables, the
// closed-form fast path for baseline ladder points, and the run cache —
// emitting one sweep_points table. Output is byte-identical to evaluating
// each point alone, at any -jobs value:
//
//	experiments -sweep 'workloads=kmeans core=all mem=all iters=4'
//	experiments -sweep 'draws=100 seed=2012 mode=holistic' -out results
//
// -predict takes the same ladder spec but finds each workload's sweet
// spot analytically (see internal/predict and docs/PERF.md "Prediction"):
// a cross-frequency model fitted from a few anchor evaluations ranks the
// ladder in closed form and only the top candidates are verified,
// emitting one predict_spots table instead of the full cross product.
// -predict-strategy and -predict-topm select the anchor placement and the
// verification budget:
//
//	experiments -predict 'workloads=kmeans core=all mem=all iters=4'
//	experiments -predict 'workloads=all' -predict-strategy adaptive -predict-topm 12
//
// -fleet simulates a whole fleet of heterogeneous nodes at once (see
// internal/fleet and docs/PERF.md "Fleet"): each node draws its device
// class, workload, DVFS mode and fault intensity statelessly from the
// fleet seed, nodes are deduplicated by configuration fingerprint, every
// distinct group simulates exactly once through the sweep fast path and
// run cache, and the results fan back out into per-node aggregates that
// are byte-identical to simulating each node alone. Dedup economics —
// group count, nodes collapsed per group, cache hit/miss deltas — print
// to stderr, never stdout:
//
//	experiments -fleet 'nodes=100000 faults=0,1,2'
//	experiments -fleet 'nodes=10000 classes=8800gtx modes=baseline,holistic' -out results
//
// Every experiment point runs on a fresh simulated machine with
// deterministic seeding, so the output is byte-identical for every -jobs
// value; the flag only trades wall-clock time for cores.
//
// Repeated simulation points are memoized through a content-addressed run
// cache (see internal/runcache): shared points like the best-performance
// baseline simulate once and replay everywhere else, with concurrent
// requests single-flighted onto one computation. The cache never changes
// output — results are deterministic and returned as private copies — so
// stdout and CSVs are byte-identical with the cache on or off. Cache
// effectiveness counters print to stderr at exit.
//
//	experiments -no-cache           # disable memoization entirely
//	experiments -cache-dir .cache   # persist points across runs (gob files
//	                                # under a schema-versioned subdirectory)
//	experiments -cache-dir .cache -cache-max-bytes 67108864
//	                                # bound the disk layer at 64 MiB,
//	                                # evicting oldest entries first
//	experiments -bench-cache BENCH_experiments.json
//	                                # time the suite no-cache/cold/warm and
//	                                # write the measurements as JSON
//
// The telemetry flags (see docs/OBSERVABILITY.md) turn on the
// internal/telemetry layer for the run and emit its state at exit. All
// telemetry output goes to stderr or files, never stdout, so experiment
// tables stay byte-identical with telemetry on or off:
//
//	experiments -metrics -              # Prometheus text format to stderr
//	experiments -metrics metrics.prom  # ... or to a file
//	experiments -metrics-json m.json   # JSON snapshot of every instrument
//	experiments -flight-recorder 64    # record the last 64 DVFS epochs
//	experiments -flight-recorder 64 -flight-recorder-out flight.json
//
// With -flight-recorder, a run that ends in an error additionally dumps the
// retained epochs as an aligned table to stderr — the controller's last K
// decisions before things went wrong.
//
// Chaos mode (see docs/ROBUSTNESS.md) injects the moderate all-classes
// fault plan into every run that does not sweep its own, exercising the
// hardened recovery paths across the whole suite. Output is still
// byte-identical for every -jobs value — fault sequences are pure
// functions of each point's plan — but differs from a fault-free run:
//
//	experiments -faults default     # CI's chaos determinism job
//
// The -cpuprofile and -memprofile flags write pprof profiles covering the
// full run, for inspecting the simulator's hot paths (see docs/PERF.md):
//
//	experiments -run fig1 -cpuprofile cpu.out
//	go tool pprof cpu.out
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"greengpu/internal/experiments"
	"greengpu/internal/faultinject"
	"greengpu/internal/fleet"
	"greengpu/internal/predict"
	"greengpu/internal/runcache"
	"greengpu/internal/sweep"
	"greengpu/internal/telemetry"
	"greengpu/internal/trace"
)

// options holds every command-line flag. Keeping them in one struct bound
// by registerFlags lets tests parse argument lists without touching the
// process-global flag.CommandLine.
type options struct {
	run             string
	sweep           string
	predict         string
	fleet           string
	predictStrategy string
	predictTopM     int
	out             string
	markdown        bool
	jobs            int
	cpuprofile      string
	memprofile      string
	noCache         bool
	cacheDir        string
	cacheMaxBytes   int64
	benchCache      string
	faults          string
	metrics         string
	metricsJSON     string
	flightRec       int
	flightOut       string
}

func registerFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.run, "run", "all", "comma-separated experiment ids (fig1 fig2 fig5 fig6 fig7 fig8 table2 sweep sweetspot predict ablations extensions resilience fleet all)")
	fs.StringVar(&o.sweep, "sweep", "", "run an ad-hoc batch sweep instead of -run: whitespace-separated key=value spec (see internal/sweep.ParseSpec), e.g. 'workloads=kmeans core=all mem=all iters=4'")
	fs.StringVar(&o.predict, "predict", "", "find sweet spots analytically instead of -run: a -sweep style ladder spec evaluated with the O(anchors) search (see internal/predict)")
	fs.StringVar(&o.fleet, "fleet", "", "simulate a dedup-compressed node fleet instead of -run: whitespace-separated key=value spec (see internal/fleet.ParseSpec), e.g. 'nodes=100000 faults=0,1,2'")
	fs.StringVar(&o.predictStrategy, "predict-strategy", "corners", "anchor placement for -predict: corners, doptimal or adaptive")
	fs.IntVar(&o.predictTopM, "predict-topm", 0, "model-ranked candidates -predict verifies by full evaluation (0 = default, negative = trust the model unverified)")
	fs.StringVar(&o.out, "out", "", "directory for CSV output (empty = none)")
	fs.BoolVar(&o.markdown, "markdown", false, "render tables as GitHub markdown instead of aligned text")
	fs.IntVar(&o.jobs, "jobs", 0, "concurrent experiment points (0 = one per CPU, 1 = sequential)")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file at exit")
	fs.BoolVar(&o.noCache, "no-cache", false, "disable the run cache (memoization of repeated simulation points)")
	fs.StringVar(&o.cacheDir, "cache-dir", "", "persist cached simulation points under this directory (empty = in-memory only)")
	fs.Int64Var(&o.cacheMaxBytes, "cache-max-bytes", 0, "cap the -cache-dir gob layer at this many bytes, evicting oldest entries first (0 = unbounded)")
	fs.StringVar(&o.benchCache, "bench-cache", "", "instead of printing tables, time the suite no-cache/cold/warm and write the JSON measurements to this file")
	fs.StringVar(&o.faults, "faults", "off", "chaos mode: inject the default fault plan into every run that doesn't sweep its own (off, default)")
	fs.StringVar(&o.metrics, "metrics", "", "enable telemetry and write a Prometheus text-format snapshot to this file at exit (- = stderr)")
	fs.StringVar(&o.metricsJSON, "metrics-json", "", "enable telemetry and write a JSON metrics snapshot to this file at exit (- = stderr)")
	fs.IntVar(&o.flightRec, "flight-recorder", 0, "enable telemetry and record the last K DVFS epochs; dumped to stderr as a table if the run fails")
	fs.StringVar(&o.flightOut, "flight-recorder-out", "", "write the flight-recorder records as JSON to this file at exit (- = stderr); requires -flight-recorder")
	return o
}

func main() {
	o := registerFlags(flag.CommandLine)
	flag.Parse()
	if err := run(o, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// run executes the selected experiments. It returns rather than exits on
// error so that profile files are always flushed and closed. Cache
// statistics go to stderr, never stdout: stdout carries only the
// deterministic tables, while single-flight wait counts depend on worker
// scheduling.
func run(o *options, stdout, stderr io.Writer) (err error) {
	finishTelemetry, err := setupTelemetry(o, stderr)
	if err != nil {
		return err
	}
	defer func() {
		if terr := finishTelemetry(err); terr != nil && err == nil {
			err = terr
		}
	}()
	if o.benchCache != "" {
		return benchCacheSuite(o, stderr)
	}
	stopProfiles, err := startProfiles(o.cpuprofile, o.memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil && err == nil {
			err = perr
		}
	}()

	env, err := experiments.NewEnv()
	if err != nil {
		return err
	}
	env.Jobs = o.jobs
	if err := applyFaultsFlag(o, env); err != nil {
		return err
	}
	if !o.noCache {
		cache, err := runcache.New(runcache.Options{Dir: o.cacheDir, MaxDiskBytes: o.cacheMaxBytes})
		if err != nil {
			return err
		}
		env.Cache = cache
	}
	r := &runner{env: env, outDir: o.out, markdown: o.markdown, stdout: stdout}
	if o.out != "" {
		if err := os.MkdirAll(o.out, 0o755); err != nil {
			return err
		}
	}

	adhoc := 0
	for _, s := range []string{o.sweep, o.predict, o.fleet} {
		if s != "" {
			adhoc++
		}
	}
	if adhoc > 1 {
		return fmt.Errorf("-sweep, -predict and -fleet are mutually exclusive")
	}
	if adhoc == 1 {
		var err error
		switch {
		case o.sweep != "":
			err = runSweep(o.sweep, env, r)
		case o.predict != "":
			err = runPredict(o, env, r)
		default:
			err = runFleet(o.fleet, env, r, stderr)
		}
		if err != nil {
			return err
		}
		if env.Cache != nil {
			fmt.Fprintln(stderr, env.Cache.Stats())
		}
		return nil
	}

	ids := strings.Split(o.run, ",")
	if o.run == "all" {
		ids = allIDs
	}
	for _, id := range ids {
		if err := r.runOne(strings.TrimSpace(id)); err != nil {
			return err
		}
	}
	if env.Cache != nil {
		fmt.Fprintln(stderr, env.Cache.Stats())
	}
	return nil
}

// setupTelemetry enables the telemetry layer and installs a flight recorder
// according to the -metrics, -metrics-json and -flight-recorder flags. The
// returned finish function emits the requested snapshots, dumps the flight
// recorder to stderr when the run failed, and restores the process-global
// telemetry state — important because tests invoke run repeatedly in one
// process. With no telemetry flag set both functions are no-ops.
func setupTelemetry(o *options, stderr io.Writer) (finish func(runErr error) error, err error) {
	if o.metrics == "" && o.metricsJSON == "" && o.flightRec == 0 {
		if o.flightOut != "" {
			return nil, fmt.Errorf("-flight-recorder-out requires -flight-recorder K")
		}
		return func(error) error { return nil }, nil
	}
	if o.flightRec < 0 {
		return nil, fmt.Errorf("-flight-recorder %d: retention must be positive", o.flightRec)
	}
	if o.flightOut != "" && o.flightRec == 0 {
		return nil, fmt.Errorf("-flight-recorder-out requires -flight-recorder K")
	}
	var rec *telemetry.FlightRecorder
	if o.flightRec > 0 {
		rec = telemetry.NewFlightRecorder(o.flightRec)
		telemetry.SetFlightRecorder(rec)
	}
	wasEnabled := telemetry.Enabled()
	telemetry.Enable()

	return func(runErr error) error {
		if !wasEnabled {
			telemetry.Disable()
		}
		var first error
		if rec != nil {
			telemetry.SetFlightRecorder(nil)
			if runErr != nil {
				fmt.Fprintln(stderr, "experiments: run failed, dumping flight recorder:")
				if err := rec.Table(0).WriteText(stderr); err != nil {
					first = err
				}
			}
			if o.flightOut != "" {
				if err := emitTo(o.flightOut, stderr, rec.WriteJSON); err != nil && first == nil {
					first = err
				}
			}
		}
		if o.metrics != "" {
			if err := emitTo(o.metrics, stderr, telemetry.Default.WritePrometheus); err != nil && first == nil {
				first = err
			}
		}
		if o.metricsJSON != "" {
			if err := emitTo(o.metricsJSON, stderr, telemetry.Default.WriteJSON); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// runSweep parses the -sweep spec and evaluates it through the batch
// engine, emitting one "sweep_points" table. The engine shares the
// environment's worker pool, run cache and chaos plan, so ad-hoc sweeps
// behave exactly like the predefined studies.
func runSweep(specText string, env *experiments.Env, r *runner) error {
	spec, err := sweep.ParseSpec(specText)
	if err != nil {
		return err
	}
	eng := &sweep.Engine{
		GPU:       env.GPUConfig,
		CPU:       env.CPUConfig,
		Bus:       env.BusConfig,
		Profiles:  env.Profiles,
		Jobs:      env.Jobs,
		Cache:     env.Cache,
		FaultPlan: env.FaultPlan,
	}
	results, err := eng.Run(spec)
	if err != nil {
		return err
	}
	return r.emit("sweep_points", sweep.Table(eng, results))
}

// runPredict parses the -predict ladder spec and finds each selected
// workload's sweet spot through the analytic O(anchors) search instead of
// the full cross product, emitting one "predict_spots" table. The engine
// shares the environment's run cache and chaos plan like -sweep does.
func runPredict(o *options, env *experiments.Env, r *runner) error {
	spec, err := sweep.ParseSpec(o.predict)
	if err != nil {
		return err
	}
	strategy, err := predict.ParseStrategy(o.predictStrategy)
	if err != nil {
		return err
	}
	opts := predict.Options{Strategy: strategy, TopM: o.predictTopM}
	eng := &sweep.Engine{
		GPU:       env.GPUConfig,
		CPU:       env.CPUConfig,
		Bus:       env.BusConfig,
		Profiles:  env.Profiles,
		Jobs:      env.Jobs,
		Cache:     env.Cache,
		FaultPlan: env.FaultPlan,
	}
	spots, err := eng.PredictSweetSpots(spec, opts)
	if err != nil {
		return err
	}
	return r.emit("predict_spots", sweep.SpotsTable(eng, opts, spots))
}

// runFleet parses the -fleet spec and evaluates the fleet through the
// dedup-compressed engine, emitting the per-group and summary tables. The
// engine shares the environment's worker pool, run cache and chaos plan.
// Dedup economics go to stderr, never stdout: stdout carries only the
// deterministic tables, identical at any -jobs value and with the cache
// on or off.
func runFleet(specText string, env *experiments.Env, r *runner, stderr io.Writer) error {
	spec, err := fleet.ParseSpec(specText)
	if err != nil {
		return err
	}
	eng := &fleet.Engine{Jobs: env.Jobs, Cache: env.Cache, FaultPlan: env.FaultPlan}
	var before runcache.Stats
	if env.Cache != nil {
		before = env.Cache.Stats()
	}
	res, err := eng.Run(spec)
	if err != nil {
		return err
	}
	if err := r.emit("fleet", fleet.GroupsTable(res), fleet.SummaryTable(res)); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "fleet: %d nodes collapsed into %d distinct groups (dedup ratio %.2f)\n",
		res.Agg.Nodes, len(res.Groups), res.DedupRatio())
	for i := range res.Groups {
		g := &res.Groups[i]
		if g.Count == 0 {
			continue // deadline reference, not a node-backed group
		}
		fmt.Fprintf(stderr, "fleet group %s/%s/%v/faults=%d: %d nodes -> 1 simulation\n",
			g.Class, g.Workload, g.Mode, g.FaultLevel, g.Count)
	}
	if env.Cache != nil {
		fmt.Fprintln(stderr, "fleet cache delta:", env.Cache.Stats().Sub(before))
	}
	return nil
}

// chaosSeed seeds the -faults default ambient plan. Fixed, so chaos runs
// reproduce across processes and machines — the CI chaos job relies on it
// to diff -jobs 1 against -jobs 8.
const chaosSeed = 2012

// applyFaultsFlag installs the -faults chaos plan on the environment.
func applyFaultsFlag(o *options, env *experiments.Env) error {
	switch o.faults {
	case "", "off":
		return nil
	case "default":
		plan := faultinject.Default(chaosSeed)
		env.FaultPlan = &plan
		return nil
	default:
		return fmt.Errorf("-faults %q: must be off or default", o.faults)
	}
}

// emitTo runs emit against stderr when path is "-", or against a freshly
// created file otherwise. Telemetry output never goes to stdout: stdout
// carries only the deterministic experiment tables.
func emitTo(path string, stderr io.Writer, emit func(io.Writer) error) error {
	if path == "-" {
		return emit(stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := emit(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// benchRun is one timed pass over the suite in the -bench-cache report.
type benchRun struct {
	// Name identifies the pass: "no-cache", "cold" (empty cache),
	// or "warm" (cache pre-populated by the cold pass).
	Name     string  `json:"name"`
	Millis   float64 `json:"wall_ms"`
	Hits     uint64  `json:"cache_hits,omitempty"`
	DiskHits uint64  `json:"cache_disk_hits,omitempty"`
	Misses   uint64  `json:"cache_misses,omitempty"`
	Waits    uint64  `json:"single_flight_waits,omitempty"`
}

// benchCacheSuite times the selected suite three ways — without a cache,
// with a cold cache, and again against the now-warm cache — and writes the
// measurements as JSON. Tables are rendered to io.Discard: the point is to
// time the simulations, not terminal IO.
func benchCacheSuite(o *options, stderr io.Writer) error {
	ids := strings.Split(o.run, ",")
	if o.run == "all" {
		ids = allIDs
	}
	pass := func(env *experiments.Env) (time.Duration, error) {
		r := &runner{env: env, stdout: io.Discard}
		start := time.Now()
		for _, id := range ids {
			if err := r.runOne(strings.TrimSpace(id)); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}

	env, err := experiments.NewEnv()
	if err != nil {
		return err
	}
	env.Jobs = o.jobs
	if err := applyFaultsFlag(o, env); err != nil {
		return err
	}

	var runs []benchRun
	record := func(name string, d time.Duration, s runcache.Stats) {
		br := benchRun{
			Name:   name,
			Millis: float64(d.Microseconds()) / 1e3,
			Hits:   s.Hits, DiskHits: s.DiskHits, Misses: s.Misses, Waits: s.Waits,
		}
		runs = append(runs, br)
		fmt.Fprintf(stderr, "bench-cache %-8s %10.3f ms   %d hits (%d disk), %d misses, %d waits\n",
			name, br.Millis, s.Hits, s.DiskHits, s.Misses, s.Waits)
	}

	d, err := pass(env)
	if err != nil {
		return err
	}
	record("no-cache", d, runcache.Stats{})

	cache, err := runcache.New(runcache.Options{Dir: o.cacheDir, MaxDiskBytes: o.cacheMaxBytes})
	if err != nil {
		return err
	}
	env.Cache = cache
	cold, err := pass(env)
	if err != nil {
		return err
	}
	coldStats := cache.Stats()
	record("cold", cold, coldStats)

	warm, err := pass(env)
	if err != nil {
		return err
	}
	// The counters are cumulative; subtract the cold pass's share so the
	// warm row reports one pass on its own.
	record("warm", warm, cache.Stats().Sub(coldStats))

	report := struct {
		Suite string     `json:"suite"`
		Jobs  int        `json:"jobs"`
		Runs  []benchRun `json:"runs"`
	}{Suite: o.run, Jobs: o.jobs, Runs: runs}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(o.benchCache, append(buf, '\n'), 0o644)
}

// startProfiles begins CPU profiling and/or arranges a heap profile,
// according to the (possibly empty) file names. The returned stop function
// must be called exactly once; it flushes and closes whatever was started.
func startProfiles(cpu, mem string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = err
			}
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				if first == nil {
					first = err
				}
				return first
			}
			runtime.GC() // report live objects, not garbage awaiting collection
			if err := pprof.WriteHeapProfile(f); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// allIDs is the "all" suite, in the order the paper presents it; the
// post-paper studies (ablations, extensions, resilience) follow.
var allIDs = []string{"table2", "fig1", "fig2", "fig5", "fig6", "fig7", "fig8", "sweep", "sweetspot", "predict", "ablations", "extensions", "resilience", "fleet"}

// handlers routes experiment ids to their runners. Keeping the dispatch
// table explicit (rather than a switch) lets tests verify the id set
// without executing every experiment.
var handlers = map[string]func(*runner) error{
	"fig1": func(r *runner) error {
		res, err := r.env.Fig1()
		if err != nil {
			return err
		}
		return r.emit("fig1", res.Table())
	},
	"fig2": func(r *runner) error {
		res, err := r.env.Fig2()
		if err != nil {
			return err
		}
		return r.emit("fig2", res.Table())
	},
	"fig5": func(r *runner) error {
		res, err := r.env.Fig5()
		if err != nil {
			return err
		}
		if err := r.emit("fig5", res.Table(), res.PowerTable()); err != nil {
			return err
		}
		fmt.Fprintln(r.stdout, res.Sparklines())
		return nil
	},
	"fig6": func(r *runner) error {
		res, err := r.env.Fig6()
		if err != nil {
			return err
		}
		return r.emit("fig6", res.Table())
	},
	"fig7": func(r *runner) error {
		var tables []*trace.Table
		for _, name := range []string{"kmeans", "hotspot"} {
			res, err := r.env.Fig7(name)
			if err != nil {
				return err
			}
			tables = append(tables, res.Table())
		}
		return r.emit("fig7", tables...)
	},
	"fig8": func(r *runner) error {
		var tables []*trace.Table
		for _, name := range []string{"hotspot", "kmeans"} {
			res, err := r.env.Fig8(name)
			if err != nil {
				return err
			}
			tables = append(tables, res.Table())
		}
		return r.emit("fig8", tables...)
	},
	"table2": func(r *runner) error {
		res, err := r.env.Table2()
		if err != nil {
			return err
		}
		return r.emit("table2", res.Table())
	},
	"sweep": func(r *runner) error {
		res, err := r.env.StaticSweep("kmeans", "hotspot")
		if err != nil {
			return err
		}
		return r.emit("sweep", res.Table())
	},
	"sweetspot": func(r *runner) error {
		rows, err := r.env.SweetSpot()
		if err != nil {
			return err
		}
		// Emitted as sweep_sweetspot.csv: the file names the study family,
		// the id stays short for -run.
		return r.emit("sweep_sweetspot", experiments.SweetSpotTable(rows))
	},
	"predict": func(r *runner) error {
		rows, err := r.env.PredictValidation()
		if err != nil {
			return err
		}
		// Emitted as predict_validation.csv — the CSV cmd/predictgate
		// checks in CI.
		return r.emit("predict_validation", experiments.PredictValidationTable(rows))
	},
	"ablations": func(r *runner) error {
		tables, err := r.env.AblationTables("kmeans")
		if err != nil {
			return err
		}
		return r.emit("ablations", tables...)
	},
	"extensions": func(r *runner) error {
		var tables []*trace.Table
		drows, err := r.env.DividerComparison("kmeans", "hotspot")
		if err != nil {
			return err
		}
		tables = append(tables, experiments.DividerComparisonTable(drows))
		arows, err := r.env.AsyncValidation("kmeans", "lud", "PF")
		if err != nil {
			return err
		}
		tables = append(tables, experiments.AsyncValidationTable(arows))
		frows, err := r.env.ActuatorFaults("kmeans")
		if err != nil {
			return err
		}
		tables = append(tables, experiments.ActuatorFaultsTable("kmeans", frows))
		prows, err := r.env.Portability()
		if err != nil {
			return err
		}
		tables = append(tables, experiments.PortabilityTable(prows))
		xrows, err := r.env.Fixed8Comparison()
		if err != nil {
			return err
		}
		tables = append(tables, experiments.Fixed8ComparisonTable(xrows))
		crows, err := r.env.CPUCapability("kmeans", "hotspot")
		if err != nil {
			return err
		}
		tables = append(tables, experiments.CPUCapabilityTable(crows))
		srows, err := r.env.SMComparison()
		if err != nil {
			return err
		}
		tables = append(tables, experiments.SMComparisonTable(srows))
		return r.emit("extensions", tables...)
	},
	"fleet": func(r *runner) error {
		rows, err := r.env.FleetStudy()
		if err != nil {
			return err
		}
		// Emitted as fleet_study.csv — the CSV the CI fleet job diffs across
		// -jobs values.
		return r.emit("fleet_study", experiments.FleetStudyTable(rows))
	},
	"resilience": func(r *runner) error {
		rows, err := r.env.FaultResilience("kmeans", "hotspot")
		if err != nil {
			return err
		}
		// Emitted as fault_resilience.csv: the file names the study, the
		// id stays short for -run.
		return r.emit("fault_resilience", experiments.FaultResilienceTable(rows))
	},
}

type runner struct {
	env      *experiments.Env
	outDir   string
	markdown bool
	stdout   io.Writer
}

func (r *runner) emit(id string, tables ...*trace.Table) error {
	for i, t := range tables {
		render := t.WriteText
		if r.markdown {
			render = t.WriteMarkdown
		}
		if err := render(r.stdout); err != nil {
			return err
		}
		fmt.Fprintln(r.stdout)
		if r.outDir != "" {
			name := id
			if len(tables) > 1 {
				name = fmt.Sprintf("%s_%d", id, i+1)
			}
			f, err := os.Create(filepath.Join(r.outDir, name+".csv"))
			if err != nil {
				return err
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (r *runner) runOne(id string) error {
	h, ok := handlers[id]
	if !ok {
		return fmt.Errorf("unknown experiment %q", id)
	}
	return h(r)
}
