package main

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const header = "ladder,workload,points,full_evals,spot_core_mhz,spot_mem_mhz," +
	"brute_core_mhz,brute_mem_mhz,spot_dist,energy_regret,med_rel_time," +
	"max_rel_time,med_rel_energy,max_rel_energy,spearman_energy\n"

func writeCSV(t *testing.T, rows ...string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "predict_validation.csv")
	if err := os.WriteFile(path, []byte(header+strings.Join(rows, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runGate(t *testing.T, path string) (int, string) {
	t.Helper()
	var out strings.Builder
	n, err := gate(path, 1, 0.05, 0.05, &out)
	if err != nil {
		t.Fatal(err)
	}
	return n, out.String()
}

func row(ladder, workload string, dist int, regret, medRelE float64) string {
	return strings.Join([]string{
		ladder, workload, "36", "17", "411", "500", "411", "500",
		strconv.Itoa(dist), strconv.FormatFloat(regret, 'f', 6, 64),
		"0.001", "0.002", strconv.FormatFloat(medRelE, 'f', 6, 64), "0.01", "0.99",
	}, ",") + "\n"
}

func TestGatePassesInThresholdRows(t *testing.T) {
	path := writeCSV(t,
		row("6x6", "kmeans", 0, 0, 0.001),
		row("24x24", "streamcluster", 10, 0.017, 0.02), // deep spot saved by regret
		row("24x24", "nbody", 1, 0.002, 0.004),
	)
	n, out := runGate(t, path)
	if n != 0 {
		t.Fatalf("failures = %d, want 0:\n%s", n, out)
	}
	if !strings.Contains(out, "ok    3 rows") {
		t.Errorf("no summary line:\n%s", out)
	}
}

func TestGateFailsDeepSpotWithRealRegret(t *testing.T) {
	path := writeCSV(t, row("24x24", "QG", 5, 0.08, 0.02))
	n, out := runGate(t, path)
	if n != 1 || !strings.Contains(out, "FAIL") {
		t.Fatalf("failures = %d, want 1:\n%s", n, out)
	}
}

func TestGateFailsBadModelError(t *testing.T) {
	path := writeCSV(t, row("6x6", "bfs", 0, 0, 0.09))
	if n, out := runGate(t, path); n != 1 {
		t.Fatalf("failures = %d, want 1 for med_rel_energy 9%%:\n%s", n, out)
	}
}

func TestGateRejectsMissingColumn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(path, []byte("ladder,workload\n6x6,kmeans\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := gate(path, 1, 0.05, 0.05, &out); err == nil {
		t.Fatal("missing columns accepted")
	}
}

func TestGateAgainstCommittedCSV(t *testing.T) {
	// The committed study output must always pass CI's exact thresholds.
	path := filepath.Join("..", "..", "results", "predict_validation.csv")
	if _, err := os.Stat(path); err != nil {
		t.Skipf("committed CSV not present: %v", err)
	}
	n, out := runGate(t, path)
	if n != 0 {
		t.Fatalf("committed CSV fails the gate:\n%s", out)
	}
}
