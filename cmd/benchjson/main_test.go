package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: greengpu/internal/sim
cpu: AMD EPYC 7B13
BenchmarkEventThroughput-8   	14107584	        84.55 ns/op	       0 B/op	       0 allocs/op
BenchmarkTicker-8            	12459828	        95.75 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	greengpu/internal/sim	3.383s
pkg: greengpu/internal/dvfs
BenchmarkScalerStep-8        	 1575276	       758.0 ns/op	      12.50 steps/ms	       0 B/op	       0 allocs/op
PASS
ok  	greengpu/internal/dvfs	1.519s
`

func TestParseSample(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Errorf("header: goos=%q goarch=%q", rep.Goos, rep.Goarch)
	}
	if rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("cpu = %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkEventThroughput" || b.Procs != 8 {
		t.Errorf("first bench name=%q procs=%d", b.Name, b.Procs)
	}
	if b.Pkg != "greengpu/internal/sim" {
		t.Errorf("first bench pkg = %q", b.Pkg)
	}
	if b.Iterations != 14107584 || b.NsPerOp != 84.55 {
		t.Errorf("first bench iters=%d ns=%v", b.Iterations, b.NsPerOp)
	}
	if b.AllocsInfo == nil || *b.AllocsInfo != 0 {
		t.Errorf("first bench allocs = %v, want explicit 0", b.AllocsInfo)
	}
	// The dvfs benchmark follows a later pkg: header and carries a custom
	// metric unit.
	d := rep.Benchmarks[2]
	if d.Pkg != "greengpu/internal/dvfs" {
		t.Errorf("dvfs bench pkg = %q", d.Pkg)
	}
	if d.Metrics["steps/ms"] != 12.5 {
		t.Errorf("custom metric = %v, want 12.5", d.Metrics["steps/ms"])
	}
}

func TestParseIgnoresNoise(t *testing.T) {
	in := `random log output
Benchmark results coming up
BenchmarkOK-4 100 5.0 ns/op
FAIL
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("got %d benchmarks, want 1 (noise lines must be skipped)", len(rep.Benchmarks))
	}
	if rep.Benchmarks[0].Name != "BenchmarkOK" {
		t.Errorf("name = %q", rep.Benchmarks[0].Name)
	}
}

func TestParseBenchLineShapes(t *testing.T) {
	cases := []struct {
		line string
		ok   bool
	}{
		{"BenchmarkX-8 100 5.0 ns/op", true},
		{"BenchmarkX 100 5.0 ns/op", true},             // no procs suffix
		{"BenchmarkX-8 100 5.0 ns/op 16 B/op", true},   // partial memstats
		{"BenchmarkX-8 100", false},                    // no value/unit pairs
		{"BenchmarkX-8 100 5.0 ns/op trailing", false}, // odd field count
		{"BenchmarkX-8 notanumber 5.0 ns/op", false},
	}
	for _, c := range cases {
		if _, ok := parseBenchLine(c.line); ok != c.ok {
			t.Errorf("parseBenchLine(%q) ok=%v, want %v", c.line, ok, c.ok)
		}
	}
}

// gate runs compare over two reports built from benchmark text and returns
// the failure count and report output.
func gate(t *testing.T, baseText, curText string, tolerance float64) (int, string) {
	t.Helper()
	return gateMetrics(t, baseText, curText, tolerance, nil)
}

func gateMetrics(t *testing.T, baseText, curText string, tolerance float64, gated map[string]bool) (int, string) {
	t.Helper()
	base, err := parse(strings.NewReader(baseText))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := parse(strings.NewReader(curText))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	n := compare(base, cur, tolerance, gated, &out)
	return n, out.String()
}

func TestAggregateTakesMinPerBenchmark(t *testing.T) {
	in := `pkg: p
BenchmarkA-8 100 30.0 ns/op 0 B/op 0 allocs/op
BenchmarkB-8 100 9.0 ns/op
BenchmarkA-8 100 10.0 ns/op 0 B/op 0 allocs/op
BenchmarkA-8 100 20.0 ns/op 0 B/op 0 allocs/op
`
	rep, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	aggregate(rep)
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks after aggregation, want 2", len(rep.Benchmarks))
	}
	// First-appearance order, min ns/op.
	if rep.Benchmarks[0].Name != "BenchmarkA" || rep.Benchmarks[0].NsPerOp != 10.0 {
		t.Errorf("A = %q %.1f ns/op, want min 10.0", rep.Benchmarks[0].Name, rep.Benchmarks[0].NsPerOp)
	}
	if rep.Benchmarks[1].Name != "BenchmarkB" || rep.Benchmarks[1].NsPerOp != 9.0 {
		t.Errorf("B = %q %.1f ns/op", rep.Benchmarks[1].Name, rep.Benchmarks[1].NsPerOp)
	}
}

func TestCompareWithinToleranceOK(t *testing.T) {
	base := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 0 B/op 0 allocs/op\n"
	cur := "pkg: p\nBenchmarkA-8 100 120.0 ns/op 0 B/op 0 allocs/op\n"
	n, out := gate(t, base, cur, 0.25)
	if n != 0 {
		t.Fatalf("%d failures within tolerance:\n%s", n, out)
	}
	if !strings.Contains(out, "ok") {
		t.Errorf("no ok line:\n%s", out)
	}
}

func TestCompareNsPerOpRegressionFails(t *testing.T) {
	base := "pkg: p\nBenchmarkA-8 100 100.0 ns/op\n"
	cur := "pkg: p\nBenchmarkA-8 100 130.0 ns/op\n"
	if n, out := gate(t, base, cur, 0.25); n != 1 {
		t.Fatalf("failures = %d, want 1 for +30%% at 25%% tolerance:\n%s", n, out)
	}
}

func TestCompareAllocIncreaseIsHardFail(t *testing.T) {
	base := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 0 B/op 0 allocs/op\n"
	// Even a massive speedup cannot excuse a single new alloc/op.
	cur := "pkg: p\nBenchmarkA-8 100 50.0 ns/op 16 B/op 1 allocs/op\n"
	n, out := gate(t, base, cur, 0.25)
	if n != 1 {
		t.Fatalf("failures = %d, want 1 for the alloc increase:\n%s", n, out)
	}
	if !strings.Contains(out, "allocs/op") {
		t.Errorf("failure does not name allocs/op:\n%s", out)
	}
}

func TestCompareMissingAllocDataFails(t *testing.T) {
	base := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 0 B/op 0 allocs/op\n"
	cur := "pkg: p\nBenchmarkA-8 100 100.0 ns/op\n" // ran without -benchmem
	if n, out := gate(t, base, cur, 0.25); n != 1 {
		t.Fatalf("failures = %d, want 1 for missing allocation data:\n%s", n, out)
	}
}

func TestCompareMissingBenchmarkFails(t *testing.T) {
	base := "pkg: p\nBenchmarkA-8 100 100.0 ns/op\nBenchmarkB-8 100 100.0 ns/op\n"
	cur := "pkg: p\nBenchmarkA-8 100 100.0 ns/op\n"
	if n, out := gate(t, base, cur, 0.25); n != 1 {
		t.Fatalf("failures = %d, want 1 for the vanished benchmark:\n%s", n, out)
	}
}

func TestCompareNewAndFasterAreNotes(t *testing.T) {
	base := "pkg: p\nBenchmarkA-8 100 100.0 ns/op\n"
	cur := "pkg: p\nBenchmarkA-8 100 10.0 ns/op\nBenchmarkNew-8 100 5.0 ns/op\n"
	n, out := gate(t, base, cur, 0.25)
	if n != 0 {
		t.Fatalf("failures = %d, want 0 (speedups and new benchmarks are notes):\n%s", n, out)
	}
	if !strings.Contains(out, "faster") || !strings.Contains(out, "not in baseline") {
		t.Errorf("notes missing:\n%s", out)
	}
}

func TestParseBenchLineKeepsSubBenchName(t *testing.T) {
	// Sub-benchmark names contain slashes and may contain dashes that are
	// not a procs suffix.
	res, ok := parseBenchLine("BenchmarkHeap/arity-4-8 100 5.0 ns/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if res.Name != "BenchmarkHeap/arity-4" || res.Procs != 8 {
		t.Errorf("name=%q procs=%d", res.Name, res.Procs)
	}
}

func TestCompareCustomMetricDriftIsNote(t *testing.T) {
	base := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 500000 points/s\n"
	cur := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 200000 points/s\n"
	n, out := gate(t, base, cur, 0.25)
	if n != 0 {
		t.Fatalf("custom metric drift failed the gate (%d failures):\n%s", n, out)
	}
	if !strings.Contains(out, "points/s") || !strings.Contains(out, "note") {
		t.Errorf("no drift note for the custom metric:\n%s", out)
	}
	// Drift within tolerance stays silent.
	quiet := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 490000 points/s\n"
	if _, out := gate(t, base, quiet, 0.25); strings.Contains(out, "points/s") {
		t.Errorf("in-tolerance metric noted:\n%s", out)
	}
}

func TestCompareDeclaredMetricRegressionFails(t *testing.T) {
	base := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 500000 points/s\n"
	cur := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 200000 points/s\n" // -60%
	gated := map[string]bool{"points/s": true}
	n, out := gateMetrics(t, base, cur, 0.25, gated)
	if n != 1 {
		t.Fatalf("failures = %d, want 1 for a -60%% declared metric:\n%s", n, out)
	}
	if !strings.Contains(out, "declared gate metric") {
		t.Errorf("failure does not name the declared gate:\n%s", out)
	}
	// Within tolerance stays fine; improvements beyond tolerance are notes.
	ok := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 450000 points/s\n"
	if n, out := gateMetrics(t, base, ok, 0.25, gated); n != 0 {
		t.Fatalf("in-tolerance declared metric failed (%d):\n%s", n, out)
	}
	fast := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 900000 points/s\n"
	n, out = gateMetrics(t, base, fast, 0.25, gated)
	if n != 0 || !strings.Contains(out, "refresh the baseline") {
		t.Errorf("declared-metric improvement should be a refresh note (%d):\n%s", n, out)
	}
}

func TestCompareDeclaredLowerBetterMetric(t *testing.T) {
	base := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 9.0 fullevals\n"
	gated := map[string]bool{"fullevals": false}
	worse := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 36.0 fullevals\n"
	if n, out := gateMetrics(t, base, worse, 0.25, gated); n != 1 {
		t.Fatalf("failures = %d, want 1 for a 4x cost metric:\n%s", n, out)
	}
	better := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 5.0 fullevals\n"
	if n, out := gateMetrics(t, base, better, 0.25, gated); n != 0 {
		t.Fatalf("cost-metric improvement failed (%d):\n%s", n, out)
	}
}

func TestCompareDeclaredMetricMissingFromRunFails(t *testing.T) {
	base := "pkg: p\nBenchmarkA-8 100 100.0 ns/op 500000 points/s\n"
	cur := "pkg: p\nBenchmarkA-8 100 100.0 ns/op\n"
	gated := map[string]bool{"points/s": true}
	if n, out := gateMetrics(t, base, cur, 0.25, gated); n != 1 {
		t.Fatalf("failures = %d, want 1 for a vanished declared metric:\n%s", n, out)
	}
	// Undeclared metrics may still vanish silently.
	if n, out := gateMetrics(t, base, cur, 0.25, nil); n != 0 {
		t.Fatalf("undeclared vanished metric failed (%d):\n%s", n, out)
	}
}

// TestLoadBaselineMergesFiles pins the multi-file gate: comma-separated
// baselines concatenate into one report keyed by (package, benchmark),
// header fields come from the first file, and bad entries fail loudly.
func TestLoadBaselineMergesFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, text string) string {
		t.Helper()
		rep, err := parse(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	sim := write("sim.json", "goos: linux\npkg: p/sim\nBenchmarkA-8 100 100.0 ns/op\n")
	fleetBase := write("fleet.json", "goos: darwin\npkg: p/fleet\nBenchmarkB-8 100 50.0 ns/op 1000 nodes/s\n")

	merged, err := loadBaseline(sim + "," + fleetBase)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Goos != "linux" {
		t.Errorf("header goos = %q, want the first file's", merged.Goos)
	}
	if len(merged.Benchmarks) != 2 {
		t.Fatalf("merged %d benchmarks, want 2", len(merged.Benchmarks))
	}
	if merged.Benchmarks[0].Pkg != "p/sim" || merged.Benchmarks[1].Pkg != "p/fleet" {
		t.Errorf("merge order lost: %q then %q", merged.Benchmarks[0].Pkg, merged.Benchmarks[1].Pkg)
	}

	// A single file keeps working through the same path.
	single, err := loadBaseline(sim)
	if err != nil {
		t.Fatal(err)
	}
	if len(single.Benchmarks) != 1 {
		t.Errorf("single-file baseline has %d benchmarks, want 1", len(single.Benchmarks))
	}

	for _, bad := range []string{"", sim + ",", "," + sim, filepath.Join(dir, "missing.json")} {
		if _, err := loadBaseline(bad); err == nil {
			t.Errorf("loadBaseline(%q) accepted, want error", bad)
		}
	}
}

// TestCompareMergedBaselineGatesBothFiles runs a combined gate end to end:
// one fresh run spanning two packages against two merged baselines, with a
// regression in each file's territory.
func TestCompareMergedBaselineGatesBothFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name, text string) string {
		t.Helper()
		rep, err := parse(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	f1 := write("one.json", "pkg: p/sweep\nBenchmarkSweep-8 100 100.0 ns/op 500000 points/s\n")
	f2 := write("two.json", "pkg: p/fleet\nBenchmarkFleet-8 100 100.0 ns/op 1000000 nodes/s\n")
	base, err := loadBaseline(f1 + "," + f2)
	if err != nil {
		t.Fatal(err)
	}
	aggregate(base)

	cur, err := parse(strings.NewReader(
		"pkg: p/sweep\nBenchmarkSweep-8 100 100.0 ns/op 100000 points/s\n" +
			"pkg: p/fleet\nBenchmarkFleet-8 100 100.0 ns/op 200000 nodes/s\n"))
	if err != nil {
		t.Fatal(err)
	}
	gated := map[string]bool{"points/s": true, "nodes/s": true}
	var out strings.Builder
	if n := compare(base, cur, 0.25, gated, &out); n != 2 {
		t.Fatalf("failures = %d, want one per merged file:\n%s", n, out.String())
	}
	for _, unit := range []string{"points/s", "nodes/s"} {
		if !strings.Contains(out.String(), unit) {
			t.Errorf("combined gate output missing the %s failure:\n%s", unit, out.String())
		}
	}
}

func TestParseGateMetrics(t *testing.T) {
	gated, err := parseGateMetrics("points/s,fullevals:lower, evalreduction:higher")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"points/s": true, "fullevals": false, "evalreduction": true}
	if len(gated) != len(want) {
		t.Fatalf("gated = %v, want %v", gated, want)
	}
	for unit, higher := range want {
		if got, ok := gated[unit]; !ok || got != higher {
			t.Errorf("gated[%q] = %v,%v, want %v", unit, got, ok, higher)
		}
	}
	if g, err := parseGateMetrics(""); err != nil || len(g) != 0 {
		t.Errorf("empty spec: %v, %v", g, err)
	}
	if _, err := parseGateMetrics("points/s:sideways"); err == nil {
		t.Error("bad direction accepted")
	}
	if _, err := parseGateMetrics(":lower"); err == nil {
		t.Error("empty unit accepted")
	}
}
