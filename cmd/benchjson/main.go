// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so benchmark trajectories can be
// committed and diffed across PRs (see docs/PERF.md and `make bench-json`).
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/sim | benchjson > BENCH_sim.json
//
// With -compare, benchjson becomes a regression gate instead of a
// converter: the fresh run on stdin is checked against a committed
// baseline, and the process exits non-zero when any benchmark slows down
// beyond the ns/op tolerance, gains a single alloc/op, or disappears:
//
//	go test -bench=. -benchmem ./internal/sim | benchjson -compare BENCH_sim.json
//
// -compare accepts a comma-separated list of baselines, merging them into
// one combined gate: a single fresh run covering several packages is
// checked against every committed report in one invocation, so CI needs
// one gate step instead of one per file. Entries are keyed by (package,
// benchmark), so reports from different packages never collide:
//
//	go test -bench=. -benchmem ./internal/sim ./internal/sweep ./internal/fleet |
//	    benchjson -compare BENCH_sim.json,BENCH_sweep.json,BENCH_fleet.json
//
// Custom metrics (b.ReportMetric output) normally drift freely — they
// carry no universal better-direction, so changes print as notes. A
// benchmark suite that treats specific metrics as contracts declares them
// with -gate-metrics, promoting out-of-tolerance regressions on those
// units to hard failures. Each entry is a unit name, higher-is-better by
// default, with an optional :lower suffix for cost-like metrics:
//
//	... | benchjson -compare BENCH_sweep.json -gate-metrics 'points/s,fullevals:lower'
//
// The parser understands the standard benchmark line format
//
//	BenchmarkName-8   1000000   123.4 ns/op   16 B/op   2 allocs/op
//
// plus the goos/goarch/cpu/pkg header lines. ns/op, B/op and allocs/op get
// dedicated fields; any other unit (custom b.ReportMetric output) lands in
// the Metrics map. Non-benchmark lines (PASS, ok, test log output) are
// ignored.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"` // the -N GOMAXPROCS suffix
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsInfo *float64           `json:"allocs_per_op,omitempty"` // pointer: 0 allocs/op is a result worth recording
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole parsed run.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	compareFile := flag.String("compare", "", "baseline JSON file(s) to gate against instead of emitting JSON; comma-separated files merge into one combined gate")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op slowdown vs the baseline (with -compare)")
	gateMetrics := flag.String("gate-metrics", "", "comma-separated custom metric units whose regressions fail the gate (with -compare); append :lower for lower-is-better units, e.g. 'points/s,fullevals:lower'")
	flag.Parse()

	gated, err := parseGateMetrics(*gateMetrics)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	aggregate(rep)
	if *compareFile != "" {
		base, err := loadBaseline(*compareFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		aggregate(base)
		failures := compare(base, rep, *tolerance, gated, os.Stdout)
		if failures > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d benchmark regression(s) vs %s\n", failures, *compareFile)
			os.Exit(1)
		}
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// aggregate collapses repeated runs of the same benchmark (go test -count=N)
// into one entry taking the minimum ns/op — the noise-robust estimator for
// shared machines, where interference only ever adds time. B/op, allocs/op
// and custom metrics are kept from the fastest run (allocation counts are
// deterministic, so every run agrees on them anyway). First-appearance
// order is preserved.
func aggregate(rep *Report) {
	type key struct {
		pkg, name string
		procs     int
	}
	idx := map[key]int{}
	out := rep.Benchmarks[:0]
	for _, b := range rep.Benchmarks {
		k := key{b.Pkg, b.Name, b.Procs}
		if i, ok := idx[k]; ok {
			if b.NsPerOp < out[i].NsPerOp {
				out[i] = b
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, b)
	}
	rep.Benchmarks = out
}

// loadBaseline loads the -compare baseline: a comma-separated list of
// JSON reports whose benchmark lists concatenate, in argument order, into
// one combined gate. The gate keys entries by (package, benchmark), so
// reports from different packages never collide; if two files do record
// the same benchmark, aggregate keeps the fastest entry, exactly as it
// does for go test -count=N repeats within one file. Header fields come
// from the first report.
func loadBaseline(spec string) (*Report, error) {
	merged := &Report{}
	for i, path := range strings.Split(spec, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			return nil, fmt.Errorf("-compare %q: empty baseline file name", spec)
		}
		rep, err := loadReport(path)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			merged.Goos, merged.Goarch, merged.CPU = rep.Goos, rep.Goarch, rep.CPU
		}
		merged.Benchmarks = append(merged.Benchmarks, rep.Benchmarks...)
	}
	return merged, nil
}

func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// parseGateMetrics parses the -gate-metrics spec into a unit → higher-is-
// better map. An empty spec returns an empty map (no custom metric gates).
func parseGateMetrics(spec string) (map[string]bool, error) {
	gated := map[string]bool{}
	if spec == "" {
		return gated, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		unit, higher := entry, true
		if i := strings.LastIndex(entry, ":"); i >= 0 {
			switch dir := entry[i+1:]; dir {
			case "higher":
			case "lower":
				higher = false
			default:
				return nil, fmt.Errorf("-gate-metrics %q: direction must be higher or lower, got %q", entry, dir)
			}
			unit = entry[:i]
		}
		if unit == "" {
			return nil, fmt.Errorf("-gate-metrics: empty unit in %q", spec)
		}
		gated[unit] = higher
	}
	return gated, nil
}

// compare gates a fresh run against the committed baseline and returns the
// number of failures. Policy: ns/op may drift up to the given fraction
// above the baseline (micro-benchmarks are noisy); any allocs/op increase
// fails outright (allocation counts are deterministic, so an increase is a
// real escape, never noise); a baseline benchmark missing from the run
// fails (a silently shrinking gate protects nothing). Speedups beyond the
// tolerance and new benchmarks are flagged as reminders to refresh the
// baseline, not failures. Custom metrics declared in gated (unit →
// higher-is-better) are contracts: a regression beyond the tolerance in
// the declared direction fails; everything else stays a note.
func compare(base, cur *Report, tolerance float64, gated map[string]bool, w io.Writer) int {
	type key struct{ pkg, name string }
	current := map[key]Result{}
	for _, b := range cur.Benchmarks {
		current[key{b.Pkg, b.Name}] = b
	}
	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(w, "FAIL  "+format+"\n", args...)
	}
	for _, b := range base.Benchmarks {
		got, ok := current[key{b.Pkg, b.Name}]
		if !ok {
			fail("%s %s: in baseline but not in this run", b.Pkg, b.Name)
			continue
		}
		delete(current, key{b.Pkg, b.Name})
		switch ratio := got.NsPerOp / b.NsPerOp; {
		case b.NsPerOp == 0:
		case ratio > 1+tolerance:
			fail("%s %s: %.2f ns/op vs baseline %.2f (+%.0f%%, tolerance %.0f%%)",
				b.Pkg, b.Name, got.NsPerOp, b.NsPerOp, (ratio-1)*100, tolerance*100)
		case ratio < 1-tolerance:
			fmt.Fprintf(w, "note  %s %s: %.2f ns/op vs baseline %.2f (%.0f%% faster — refresh the baseline)\n",
				b.Pkg, b.Name, got.NsPerOp, b.NsPerOp, (1-ratio)*100)
		}
		if b.AllocsInfo != nil {
			switch {
			case got.AllocsInfo == nil:
				fail("%s %s: baseline records %.0f allocs/op but this run has no allocation data (run with -benchmem)",
					b.Pkg, b.Name, *b.AllocsInfo)
			case *got.AllocsInfo > *b.AllocsInfo:
				fail("%s %s: %.0f allocs/op vs baseline %.0f — allocation increases are hard failures",
					b.Pkg, b.Name, *got.AllocsInfo, *b.AllocsInfo)
			}
		}
		// Custom metrics (b.ReportMetric output, e.g. points/s) carry no
		// universal better-direction, so drift beyond the tolerance is
		// reported as a note — unless the unit is declared in gated, in
		// which case a regression in the declared direction is a hard
		// failure (a throughput contract, like the sweep engine's
		// points/s). Units are visited in sorted order for stable output.
		units := make([]string, 0, len(b.Metrics))
		for unit := range b.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			bv := b.Metrics[unit]
			gv, ok := got.Metrics[unit]
			if !ok || bv == 0 {
				if _, declared := gated[unit]; declared && !ok {
					fail("%s %s: baseline records %s but this run did not report it",
						b.Pkg, b.Name, unit)
				}
				continue
			}
			r := gv / bv
			if r <= 1+tolerance && r >= 1-tolerance {
				continue
			}
			if higher, declared := gated[unit]; declared {
				if regressed := (higher && r < 1) || (!higher && r > 1); regressed {
					fail("%s %s: %.6g %s vs baseline %.6g (%+.0f%%, declared gate metric, tolerance %.0f%%)",
						b.Pkg, b.Name, gv, unit, bv, (r-1)*100, tolerance*100)
					continue
				}
				fmt.Fprintf(w, "note  %s %s: %.6g %s vs baseline %.6g (%+.0f%% better — refresh the baseline)\n",
					b.Pkg, b.Name, gv, unit, bv, (r-1)*100)
				continue
			}
			fmt.Fprintf(w, "note  %s %s: %.6g %s vs baseline %.6g (%+.0f%%)\n",
				b.Pkg, b.Name, gv, unit, bv, (r-1)*100)
		}
	}
	for _, b := range cur.Benchmarks {
		if _, unmatched := current[key{b.Pkg, b.Name}]; unmatched {
			fmt.Fprintf(w, "note  %s %s: not in baseline (new benchmark — refresh the baseline)\n", b.Pkg, b.Name)
		}
	}
	if failures == 0 {
		fmt.Fprintf(w, "ok    %d benchmarks within ±%.0f%% ns/op of baseline, no allocs/op increases\n",
			len(base.Benchmarks), tolerance*100)
	}
	return failures
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue // a log line that happens to start with "Benchmark"
			}
			res.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one "BenchmarkX-N  iters  v unit  v unit ..." line.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	// Minimum shape: name, iteration count, and at least one value/unit pair.
	if len(fields) < 4 || (len(fields)-2)%2 != 0 {
		return Result{}, false
	}
	res := Result{Name: fields[0]}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			allocs := v
			res.AllocsInfo = &allocs
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, true
}
