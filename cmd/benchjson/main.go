// Command benchjson converts `go test -bench` text output on stdin into a
// machine-readable JSON document on stdout, so benchmark trajectories can be
// committed and diffed across PRs (see docs/PERF.md and `make bench-json`).
//
// Usage:
//
//	go test -bench=. -benchmem ./internal/sim | benchjson > BENCH_sim.json
//
// The parser understands the standard benchmark line format
//
//	BenchmarkName-8   1000000   123.4 ns/op   16 B/op   2 allocs/op
//
// plus the goos/goarch/cpu/pkg header lines. ns/op, B/op and allocs/op get
// dedicated fields; any other unit (custom b.ReportMetric output) lands in
// the Metrics map. Non-benchmark lines (PASS, ok, test log output) are
// ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Pkg        string             `json:"pkg,omitempty"`
	Procs      int                `json:"procs,omitempty"` // the -N GOMAXPROCS suffix
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsInfo *float64           `json:"allocs_per_op,omitempty"` // pointer: 0 allocs/op is a result worth recording
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the whole parsed run.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: []Result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseBenchLine(line)
			if !ok {
				continue // a log line that happens to start with "Benchmark"
			}
			res.Pkg = pkg
			rep.Benchmarks = append(rep.Benchmarks, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one "BenchmarkX-N  iters  v unit  v unit ..." line.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	// Minimum shape: name, iteration count, and at least one value/unit pair.
	if len(fields) < 4 || (len(fields)-2)%2 != 0 {
		return Result{}, false
	}
	res := Result{Name: fields[0]}
	if i := strings.LastIndex(res.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			allocs := v
			res.AllocsInfo = &allocs
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, true
}
