// Command workloads prints the evaluation workload set: the Table II
// characterization measured on the simulated device, plus the calibrated
// per-unit demands behind each profile.
//
// Usage:
//
//	workloads            # Table II characterization
//	workloads -detail    # include per-phase calibrated demands
package main

import (
	"flag"
	"fmt"
	"os"

	"greengpu/internal/experiments"
	"greengpu/internal/trace"
)

func main() {
	detail := flag.Bool("detail", false, "print calibrated per-phase demands")
	flag.Parse()

	env, err := experiments.NewEnv()
	if err != nil {
		fatal(err)
	}
	res, err := env.Table2()
	if err != nil {
		fatal(err)
	}
	if err := res.Table().WriteText(os.Stdout); err != nil {
		fatal(err)
	}

	if !*detail {
		return
	}
	fmt.Println()
	t := trace.NewTable("Calibrated per-unit demands (1 unit = 1% of an iteration)",
		"workload", "phase", "fraction", "ops/unit", "bytes/unit", "latency floor (ms)", "cpu ops/unit")
	for _, p := range env.Profiles {
		for _, ph := range p.Phases {
			t.AddRow(p.Name, ph.Label,
				fmt.Sprintf("%.2f", ph.Fraction),
				fmt.Sprintf("%.3g", ph.OpsPerUnit),
				fmt.Sprintf("%.3g", ph.BytesPerUnit),
				fmt.Sprintf("%.1f", ph.StallPerUnit*1e3),
				fmt.Sprintf("%.3g", p.CPUOpsPerUnit))
		}
	}
	if err := t.WriteText(os.Stdout); err != nil {
		fatal(err)
	}

	fmt.Println()
	t2 := trace.NewTable("Division-related parameters",
		"workload", "iterations", "cpu slowdown", "balanced cpu share", "transfer MB/iter", "repartition MB")
	for _, p := range env.Profiles {
		spec := p.Spec()
		balance := 1 / (1 + spec.CPUSlowdown)
		t2.AddRow(p.Name,
			fmt.Sprintf("%d", p.Iterations),
			fmt.Sprintf("%.1f", spec.CPUSlowdown),
			fmt.Sprintf("%.0f%%", balance*100),
			fmt.Sprintf("%.0f", spec.TransferMB),
			fmt.Sprintf("%.0f", spec.RepartitionMB))
	}
	if err := t2.WriteText(os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "workloads:", err)
	os.Exit(1)
}
