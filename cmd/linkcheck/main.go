// Command linkcheck verifies the relative links in the repository's
// markdown files: every [text](target) whose target is a local path must
// point at a file or directory that exists.
//
// Usage:
//
//	linkcheck README.md docs DESIGN.md
//
// Arguments are files or directories; directories are walked for *.md.
// External links (http, https, mailto), pure #fragment anchors, and paths
// that escape the repository root (e.g. the CI badge's ../../actions URL
// shorthand) are skipped — only intra-repo references are checked. Each
// broken link prints as file:line: message and the exit status is 1 when
// any were found.
package main

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// linkPattern matches inline markdown links [text](target). Images
// ![alt](target) match too via the optional bang. Nested brackets and
// reference-style links are out of scope — the repo doesn't use them.
var linkPattern = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"."}
	}
	var files []string
	for _, arg := range args {
		fi, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
		if !fi.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() && strings.HasPrefix(d.Name(), ".") && path != arg {
				return filepath.SkipDir
			}
			if !d.IsDir() && strings.HasSuffix(d.Name(), ".md") {
				files = append(files, path)
			}
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "linkcheck:", err)
			os.Exit(2)
		}
	}
	sort.Strings(files)

	broken := 0
	for _, file := range files {
		for _, b := range checkFile(file) {
			fmt.Println(b)
			broken++
		}
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken links\n", broken)
		os.Exit(1)
	}
}

// checkFile returns one formatted message per broken relative link in the
// given markdown file. Targets resolve relative to the file's directory.
func checkFile(file string) []string {
	data, err := os.ReadFile(file)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", file, err)}
	}
	var out []string
	dir := filepath.Dir(file)
	inFence := false
	for i, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkPattern.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skip(target) {
				continue
			}
			// Drop a #section anchor from a file target.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(dir, target)
			// Links that climb out of the repository (CI badge URL
			// shorthand) cannot be checked against the working tree.
			if rel, err := filepath.Rel(".", resolved); err == nil && strings.HasPrefix(rel, "..") {
				continue
			}
			if _, err := os.Stat(resolved); err != nil {
				out = append(out, fmt.Sprintf("%s:%d: broken link %q", file, i+1, m[1]))
			}
		}
	}
	return out
}

// skip reports whether the target is out of scope: external URLs, mail
// links, and in-page anchors.
func skip(target string) bool {
	return strings.HasPrefix(target, "http://") ||
		strings.HasPrefix(target, "https://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
