// Command greengpu runs one evaluation workload on the simulated GPU-CPU
// testbed under a chosen energy-management configuration and reports
// energy, execution time and per-iteration behaviour.
//
// Usage:
//
//	greengpu -workload kmeans -mode greengpu
//	greengpu -workload hotspot -mode division -iterations 10 -trace
//	greengpu -list
//
// Modes: baseline (Rodinia default: all work on the GPU, peak clocks),
// freqscaling (tier 2 only), division (tier 1 only), greengpu (holistic).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"greengpu/internal/core"
	"greengpu/internal/division"
	"greengpu/internal/experiments"
	"greengpu/internal/trace"
)

func main() {
	var (
		workload   = flag.String("workload", "kmeans", "workload name (see -list)")
		mode       = flag.String("mode", "greengpu", "baseline | freqscaling | division | greengpu")
		iterations = flag.Int("iterations", 0, "iteration count override (0 = workload default)")
		showTrace  = flag.Bool("trace", false, "print the per-iteration trace")
		compare    = flag.Bool("compare", true, "also run the baseline and report savings")
		list       = flag.Bool("list", false, "list available workloads and exit")
		divider    = flag.String("divider", "step", "tier 1 policy: step (paper heuristic) | qilin (adaptive mapping)")
		fixed8     = flag.Bool("fixed8", false, "run tier 2 on the 8-bit fixed-point weight table (§VI sketch)")
		jsonOut    = flag.Bool("json", false, "emit the result as JSON on stdout")
	)
	flag.Parse()

	env, err := experiments.NewEnv()
	if err != nil {
		fatal(err)
	}

	if *list {
		for _, p := range env.Profiles {
			fmt.Printf("%-14s %s\n", p.Name, p.Description)
		}
		return
	}

	m, ok := map[string]core.Mode{
		"baseline":    core.Baseline,
		"freqscaling": core.FreqScaling,
		"division":    core.Division,
		"greengpu":    core.Holistic,
		"holistic":    core.Holistic,
	}[*mode]
	if !ok {
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	p, err := env.Profile(*workload)
	if err != nil {
		fatal(err)
	}

	cfg := core.DefaultConfig(m)
	cfg.Iterations = *iterations
	cfg.Fixed8Scaler = *fixed8
	switch *divider {
	case "step":
	case "qilin":
		cfg.DivisionPolicy = division.NewQilin(division.DefaultQilinConfig())
	default:
		fatal(fmt.Errorf("unknown divider %q", *divider))
	}
	res, err := core.Run(env.Machine(), p, cfg)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		emitJSON(res)
		return
	}

	fmt.Printf("workload   %s\n", res.Workload)
	fmt.Printf("mode       %v\n", res.Mode)
	fmt.Printf("iterations %d\n", len(res.Iterations))
	fmt.Printf("exec time  %.1f s\n", res.TotalTime.Seconds())
	fmt.Printf("energy     %.1f kJ (GPU %.1f kJ, CPU side %.1f kJ)\n",
		res.Energy.Joules()/1e3, res.EnergyGPU.Joules()/1e3, res.EnergyCPU.Joules()/1e3)
	fmt.Printf("avg power  %.1f W\n", res.AveragePower().Watts())
	if m == core.Division || m == core.Holistic {
		fmt.Printf("division   converged to %.0f/%.0f (CPU/GPU)\n",
			res.FinalRatio*100, (1-res.FinalRatio)*100)
	}

	if *compare && m != core.Baseline {
		bcfg := core.DefaultConfig(core.Baseline)
		bcfg.Iterations = *iterations
		base, err := core.Run(env.Machine(), p, bcfg)
		if err != nil {
			fatal(err)
		}
		saving := 1 - float64(res.Energy)/float64(base.Energy)
		delta := float64(res.TotalTime)/float64(base.TotalTime) - 1
		fmt.Printf("vs default %.2f%% energy saving, %+.2f%% execution time\n", saving*100, delta*100)
	}

	if *showTrace {
		t := trace.NewTable("\nper-iteration trace",
			"iter", "cpu %", "tc (s)", "tg (s)", "wall (s)", "energy (kJ)", "gpu levels", "cpu level")
		for _, it := range res.Iterations {
			t.AddRow(
				fmt.Sprintf("%d", it.Index+1),
				fmt.Sprintf("%.0f", it.R*100),
				fmt.Sprintf("%.1f", it.TC.Seconds()),
				fmt.Sprintf("%.1f", it.TG.Seconds()),
				fmt.Sprintf("%.1f", it.WallTime.Seconds()),
				fmt.Sprintf("%.2f", it.Energy.Joules()/1e3),
				fmt.Sprintf("(%d,%d)", it.CoreLevel, it.MemLevel),
				fmt.Sprintf("%d", it.CPULevel))
		}
		if err := t.WriteText(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// jsonResult is the machine-readable run summary emitted by -json.
type jsonResult struct {
	Workload    string  `json:"workload"`
	Mode        string  `json:"mode"`
	Iterations  int     `json:"iterations"`
	ExecSeconds float64 `json:"exec_seconds"`
	EnergyJ     float64 `json:"energy_joules"`
	EnergyGPUJ  float64 `json:"energy_gpu_joules"`
	EnergyCPUJ  float64 `json:"energy_cpu_joules"`
	AvgPowerW   float64 `json:"avg_power_watts"`
	FinalRatio  float64 `json:"final_cpu_share"`
	DVFSSteps   int     `json:"dvfs_steps"`

	IterationTrace []jsonIteration `json:"iteration_trace"`
}

type jsonIteration struct {
	Index       int     `json:"index"`
	CPUShare    float64 `json:"cpu_share"`
	TCSeconds   float64 `json:"tc_seconds"`
	TGSeconds   float64 `json:"tg_seconds"`
	WallSeconds float64 `json:"wall_seconds"`
	EnergyJ     float64 `json:"energy_joules"`
	CoreLevel   int     `json:"gpu_core_level"`
	MemLevel    int     `json:"gpu_mem_level"`
	CPULevel    int     `json:"cpu_level"`
}

func emitJSON(res *core.Result) {
	out := jsonResult{
		Workload:    res.Workload,
		Mode:        res.Mode.String(),
		Iterations:  len(res.Iterations),
		ExecSeconds: res.TotalTime.Seconds(),
		EnergyJ:     res.Energy.Joules(),
		EnergyGPUJ:  res.EnergyGPU.Joules(),
		EnergyCPUJ:  res.EnergyCPU.Joules(),
		AvgPowerW:   res.AveragePower().Watts(),
		FinalRatio:  res.FinalRatio,
		DVFSSteps:   res.DVFSSteps,
	}
	for _, it := range res.Iterations {
		out.IterationTrace = append(out.IterationTrace, jsonIteration{
			Index:       it.Index,
			CPUShare:    it.R,
			TCSeconds:   it.TC.Seconds(),
			TGSeconds:   it.TG.Seconds(),
			WallSeconds: it.WallTime.Seconds(),
			EnergyJ:     it.Energy.Joules(),
			CoreLevel:   it.CoreLevel,
			MemLevel:    it.MemLevel,
			CPULevel:    it.CPULevel,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "greengpu:", err)
	os.Exit(1)
}
