package main

import (
	"bytes"
	"context"
	"flag"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// safeBuffer guards the stderr buffer: run logs from the serve goroutine
// while the test polls for the listening line.
type safeBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// parseOptions runs a command line through the real flag set.
func parseOptions(t *testing.T, args ...string) *options {
	t.Helper()
	fs := flag.NewFlagSet("greengpud", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	o := registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return o
}

// baseURL polls stderr for the "listening on http://..." announcement
// and returns the URL.
func baseURL(t *testing.T, stderr *safeBuffer) string {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, line := range strings.Split(stderr.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "greengpud: listening on "); ok {
				return strings.TrimSpace(rest)
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon never announced its address; stderr:\n%s", stderr.String())
	return ""
}

// TestRunSIGTERMDrainsAndExitsZero drives the full daemon lifecycle in
// process: run() comes up on an ephemeral port under the same
// signal.NotifyContext main uses, serves a request, receives a real
// SIGTERM, drains, and returns nil — which is exactly main exiting 0.
func TestRunSIGTERMDrainsAndExitsZero(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	metricsPath := filepath.Join(t.TempDir(), "metrics.prom")
	o := parseOptions(t, "-addr", "127.0.0.1:0", "-jobs", "1",
		"-flight-recorder", "16", "-drain-timeout", "10s", "-metrics", metricsPath)
	stderr := &safeBuffer{}
	done := make(chan error, 1)
	go func() { done <- run(ctx, o, stderr) }()

	url := baseURL(t, stderr)
	resp, err := http.Post(url+"/v1/sweep", "application/json",
		strings.NewReader(`{"spec":"workloads=kmeans iters=4"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d", resp.StatusCode)
	}

	// The NotifyContext above intercepts the signal, so the test process
	// survives and run sees ctx canceled — the SIGTERM path of main.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil (exit 0)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("run did not return after SIGTERM; stderr:\n%s", stderr.String())
	}

	logs := stderr.String()
	for _, want := range []string{"shutdown requested, draining", "jobs at exit:"} {
		if !strings.Contains(logs, want) {
			t.Errorf("stderr missing %q:\n%s", want, logs)
		}
	}
	snap, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(snap), "greengpu_daemon_sweep_requests_total 1") {
		t.Errorf("final metrics snapshot missing sweep counter:\n%s", snap)
	}
}

// TestRunRejectsNegativeFlightRecorder covers the flag-validation error
// path without binding a socket.
func TestRunRejectsNegativeFlightRecorder(t *testing.T) {
	o := parseOptions(t, "-addr", "127.0.0.1:0", "-flight-recorder", "-1")
	err := run(context.Background(), o, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "non-negative") {
		t.Fatalf("run = %v, want flight-recorder validation error", err)
	}
}

// TestEmitMetricsStderr covers the "-" spelling of -metrics.
func TestEmitMetricsStderr(t *testing.T) {
	var buf bytes.Buffer
	if err := emitMetrics("-", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "# TYPE") {
		t.Fatalf("snapshot has no Prometheus type lines:\n%s", buf.String())
	}
}
