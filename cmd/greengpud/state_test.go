package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"greengpu/internal/jobstore"
)

func TestStateDirFlag(t *testing.T) {
	o := parseOptions(t, "-state-dir", "/tmp/state")
	if o.stateDir != "/tmp/state" {
		t.Fatalf("stateDir = %q", o.stateDir)
	}
	if d := parseOptions(t).stateDir; d != "" {
		t.Fatalf("default stateDir = %q, want empty (jobs die with the process)", d)
	}
}

// TestRunRecoversJournaledJob drives the crash half of the recovery story
// in process: the state dir already holds an accept record with no
// terminal record (what a SIGKILL mid-job leaves behind), and run() must
// announce the recovery, re-execute the job, and serve its result under
// the original id. The full SIGKILL round trip with byte-identity lives
// in `make daemon-crash-smoke`.
func TestRunRecoversJournaledJob(t *testing.T) {
	stateDir := filepath.Join(t.TempDir(), "state")
	j, _, err := jobstore.Open(stateDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(jobstore.Record{
		Seq: 0, Op: jobstore.OpAccept, Kind: "sweep",
		Spec: "workloads=kmeans iters=4", At: time.Now().UnixNano(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	o := parseOptions(t, "-addr", "127.0.0.1:0", "-jobs", "1",
		"-state-dir", stateDir, "-drain-timeout", "10s")
	stderr := &safeBuffer{}
	done := make(chan error, 1)
	go func() { done <- run(ctx, o, stderr) }()

	url := baseURL(t, stderr)
	if !strings.Contains(stderr.String(), "recovered 1 pending job(s)") {
		t.Errorf("stderr missing recovery announcement:\n%s", stderr.String())
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/results/0")
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Status    string `json:"status"`
			Recovered bool   `json:"recovered"`
			Error     string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if st.Status == "done" {
			if !st.Recovered {
				t.Fatal("recovered job not flagged recovered")
			}
			break
		}
		if st.Status != "running" {
			t.Fatalf("recovered job ended %q (%s)", st.Status, st.Error)
		}
		if time.Now().After(deadline) {
			t.Fatal("recovered job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("run did not drain; stderr:\n%s", stderr.String())
	}

	// The terminal record went down with the drain: a reopened journal has
	// nothing pending.
	j2, pending, err := jobstore.Open(stateDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if len(pending) != 0 {
		t.Fatalf("journal still pending after clean drain: %+v", pending)
	}
}
