// Command greengpud serves the GreenGPU simulation engines as a
// long-lived HTTP/JSON service (see docs/SERVICE.md for the full API
// reference and curl quickstarts).
//
// Usage:
//
//	greengpud                          # serve on 127.0.0.1:7979
//	greengpud -addr :8080              # all interfaces, port 8080
//	greengpud -jobs 8                  # bound each request's fan-out
//	greengpud -cache-dir .cache        # persist points across restarts
//	greengpud -state-dir .state        # journal async jobs; recover on restart
//	greengpud -flight-recorder 256     # enable GET /v1/flightrecorder
//
// Endpoints: POST /v1/simulate, POST /v1/sweep, POST /v1/fleet (the
// sweep.ParseSpec / fleet.ParseSpec mini-languages, sync or async),
// GET /v1/jobs, GET /v1/results/{id}, GET /v1/flightrecorder,
// GET /v1/stats, GET /metrics (live Prometheus registry), GET /healthz.
//
// With -state-dir, accepted async jobs are journaled (fsynced before the
// 202 is returned); after a crash the next start re-executes every job
// that had no terminal record, and deterministic replay — ideally through
// a warm -cache-dir — makes the recovered results byte-identical to an
// uninterrupted run (enforced by `make daemon-crash-smoke`).
//
// Telemetry is always enabled — a live /metrics endpoint is the point of
// running a daemon — and all logging goes to stderr. On SIGINT/SIGTERM
// the daemon drains in-flight requests and async jobs (bounded by
// -drain-timeout), flushes the cache counters, optionally writes a final
// metrics snapshot (-metrics FILE), and exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"greengpu/internal/daemon"
	"greengpu/internal/experiments"
	"greengpu/internal/runcache"
	"greengpu/internal/telemetry"
)

// options holds every command-line flag, bound by registerFlags so tests
// can parse argument lists without touching flag.CommandLine.
type options struct {
	addr          string
	jobs          int
	noCache       bool
	cacheDir      string
	cacheMaxBytes int64
	stateDir      string
	maxInflight   int
	maxBodyBytes  int64
	flightRec     int
	drainTimeout  time.Duration
	metrics       string
}

func registerFlags(fs *flag.FlagSet) *options {
	o := &options{}
	fs.StringVar(&o.addr, "addr", "127.0.0.1:7979", "listen address (host:port; :port binds all interfaces)")
	fs.IntVar(&o.jobs, "jobs", 0, "concurrent points per request (0 = one worker per CPU, 1 = sequential)")
	fs.BoolVar(&o.noCache, "no-cache", false, "disable the shared run cache (repeat points re-simulate)")
	fs.StringVar(&o.cacheDir, "cache-dir", "", "persist cached simulation points under this directory (empty = in-memory only)")
	fs.Int64Var(&o.cacheMaxBytes, "cache-max-bytes", 0, "cap the -cache-dir gob layer at this many bytes, evicting oldest entries first (0 = unbounded)")
	fs.StringVar(&o.stateDir, "state-dir", "", "journal async jobs under this directory and recover pending ones on restart (empty = jobs die with the process)")
	fs.IntVar(&o.maxInflight, "max-inflight", 0, "concurrently admitted sweeps/fleets before shedding with 503 (0 = default 64)")
	fs.Int64Var(&o.maxBodyBytes, "max-body-bytes", 0, "request body size limit in bytes (0 = default 1 MiB)")
	fs.IntVar(&o.flightRec, "flight-recorder", 0, "record the last K DVFS epochs and enable GET /v1/flightrecorder (0 = off)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 0, "graceful-shutdown drain bound (0 = 30s default)")
	fs.StringVar(&o.metrics, "metrics", "", "write a final Prometheus snapshot to this file at exit (- = stderr)")
	return o
}

func main() {
	o := registerFlags(flag.CommandLine)
	flag.Parse()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, o, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "greengpud:", err)
		os.Exit(1)
	}
}

// run builds the server from the default testbed environment, announces
// the listen address on stderr ("listening on http://..."), and serves
// until ctx is canceled, then drains and flushes. Factored out of main
// so tests can drive the full lifecycle — including SIGTERM — in
// process.
func run(ctx context.Context, o *options, stderr io.Writer) error {
	env, err := experiments.NewEnv()
	if err != nil {
		return err
	}
	cfg := daemon.Config{
		GPU:          env.GPUConfig,
		CPU:          env.CPUConfig,
		Bus:          env.BusConfig,
		Profiles:     env.Profiles,
		Jobs:         o.jobs,
		MaxInflight:  o.maxInflight,
		MaxBodyBytes: o.maxBodyBytes,
		StateDir:     o.stateDir,
	}
	if !o.noCache {
		cache, err := runcache.New(runcache.Options{Dir: o.cacheDir, MaxDiskBytes: o.cacheMaxBytes})
		if err != nil {
			return err
		}
		cfg.Cache = cache
	}
	if o.flightRec < 0 {
		return fmt.Errorf("-flight-recorder %d: retention must be non-negative", o.flightRec)
	}
	if o.flightRec > 0 {
		rec := telemetry.NewFlightRecorder(o.flightRec)
		cfg.Recorder = rec
		telemetry.SetFlightRecorder(rec)
		defer telemetry.SetFlightRecorder(nil)
	}

	// The daemon's reason to exist is live observability: enable the
	// registry for the process lifetime (restored for in-process tests).
	wasEnabled := telemetry.Enabled()
	telemetry.Enable()
	defer func() {
		if !wasEnabled {
			telemetry.Disable()
		}
	}()

	srv, err := daemon.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if n := srv.RecoveredJobs(); n > 0 {
		fmt.Fprintf(stderr, "greengpud: recovered %d pending job(s) from %s\n", n, o.stateDir)
	}
	fmt.Fprintf(stderr, "greengpud: listening on http://%s\n", ln.Addr())
	serveErr := srv.Serve(ctx, ln, o.drainTimeout, stderr)
	if o.metrics != "" {
		if err := emitMetrics(o.metrics, stderr); err != nil && serveErr == nil {
			serveErr = err
		}
	}
	return serveErr
}

// emitMetrics writes the final Prometheus snapshot to path ("-" =
// stderr), the same emitter /metrics serves live.
func emitMetrics(path string, stderr io.Writer) error {
	if path == "-" {
		return telemetry.Default.WritePrometheus(stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.Default.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
