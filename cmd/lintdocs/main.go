// Command lintdocs enforces the repository's godoc hygiene: every exported
// top-level identifier (and every exported method on an exported type) must
// carry a doc comment that starts with the identifier's name, and every
// package must have a package comment.
//
// Usage:
//
//	lintdocs ./internal/... style package paths are not understood; pass
//	directories:
//
//	lintdocs internal cmd
//
// Each violation prints as file:line: message. The exit status is 1 when
// any violation was found, so the Makefile can gate on it. Test files and
// testdata directories are skipped: test helpers are internal narrative,
// not API surface.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"."}
	}
	var dirs []string
	for _, root := range roots {
		if err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			dirs = append(dirs, path)
			return nil
		}); err != nil {
			fmt.Fprintln(os.Stderr, "lintdocs:", err)
			os.Exit(2)
		}
	}
	sort.Strings(dirs)

	bad := 0
	for _, dir := range dirs {
		violations, err := lintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lintdocs:", err)
			os.Exit(2)
		}
		for _, v := range violations {
			fmt.Println(v)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdocs: %d undocumented exported identifiers\n", bad)
		os.Exit(1)
	}
}

// lintDir parses the non-test Go files of one directory and returns the
// formatted violations, in file/line order.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	type violation struct {
		file string
		line int
		msg  string
	}
	var found []violation
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		found = append(found, violation{p.Filename, p.Line, fmt.Sprintf(format, args...)})
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		// The package comment may live in any one file of the package.
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc && pkg.Name != "main" {
			names := make([]string, 0, len(pkg.Files))
			for name := range pkg.Files {
				names = append(names, name)
			}
			sort.Strings(names)
			report(pkg.Files[names[0]].Package, "package %s has no package comment", pkg.Name)
		}
		for _, f := range pkg.Files {
			lintFile(f, report)
		}
	}
	sort.Slice(found, func(i, j int) bool {
		if found[i].file != found[j].file {
			return found[i].file < found[j].file
		}
		return found[i].line < found[j].line
	})
	out := make([]string, len(found))
	for i, v := range found {
		out[i] = fmt.Sprintf("%s:%d: %s", v.file, v.line, v.msg)
	}
	return out, nil
}

// lintFile reports exported declarations in one file that lack a doc
// comment beginning with the declared name. A comment on the enclosing
// group declaration (var/const/type blocks) counts for all its members:
// grouped identifiers usually share one narrative.
func lintFile(f *ast.File, report func(pos token.Pos, format string, args ...any)) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			checkDoc(d.Doc, d.Name, "function", report)
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					if s.Doc == nil && !groupDoc {
						report(s.Name.Pos(), "exported type %s has no doc comment", s.Name.Name)
					} else if s.Doc != nil {
						checkDoc(s.Doc, s.Name, "type", report)
					}
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if !name.IsExported() {
							continue
						}
						if s.Doc == nil && !groupDoc {
							report(name.Pos(), "exported %s %s has no doc comment", kindOf(d.Tok), name.Name)
						}
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not API surface). Plain functions
// trivially qualify.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// checkDoc verifies the comment exists and opens with the identifier name
// (the godoc convention that makes generated listings readable).
func checkDoc(doc *ast.CommentGroup, name *ast.Ident, kind string, report func(pos token.Pos, format string, args ...any)) {
	if doc == nil {
		report(name.Pos(), "exported %s %s has no doc comment", kind, name.Name)
		return
	}
	text := strings.TrimSpace(doc.Text())
	// Allow the standard deprecation and article openings.
	for _, prefix := range []string{name.Name, "A " + name.Name, "An " + name.Name, "The " + name.Name, "Deprecated:"} {
		if strings.HasPrefix(text, prefix) {
			return
		}
	}
	report(name.Pos(), "doc comment for %s %s should start with %q", kind, name.Name, name.Name)
}

// kindOf names a GenDecl token for error messages.
func kindOf(tok token.Token) string {
	switch tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	default:
		return tok.String()
	}
}
