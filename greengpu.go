// Package greengpu is a faithful reimplementation and simulation-based
// reproduction of GreenGPU (Ma, Li, Chen, Zhang, Wang — ICPP 2012), a
// holistic two-tier energy-management framework for GPU-CPU heterogeneous
// architectures:
//
//   - Tier 1 dynamically divides each iteration's workload between the CPU
//     and the GPU so both sides finish together, minimizing idle energy.
//   - Tier 2 scales the GPU core and memory clocks in a coordinated way
//     from their measured utilizations (a Weighted-Majority-Algorithm
//     learner over core×memory frequency pairs), and the CPU P-state via
//     the Linux ondemand policy.
//
// Because the paper's testbed is hardware (a GeForce 8800 GTX with
// Coolbits clock control, an AMD Phenom II X2, and two wall-power meters),
// this package ships a calibrated simulated testbed with the same control
// surfaces: per-domain frequency ladders, nvidia-smi-style utilization
// counters, wall-power models at the paper's two measurement boundaries,
// and the nine Table II evaluation workloads.
//
// This root package is the public facade: it re-exports the framework,
// testbed and workload types from the internal packages so downstream
// users can drive everything through one import.
//
// Quick start:
//
//	profiles, _ := greengpu.Rodinia()
//	kmeans, _ := greengpu.Profile(profiles, "kmeans")
//	res, _ := greengpu.Run(greengpu.NewTestbed(), kmeans,
//		greengpu.DefaultConfig(greengpu.Holistic))
//	fmt.Println(res.Energy, res.FinalRatio)
//
// The experiment harness regenerating every table and figure of the
// paper's evaluation lives in internal/experiments and is exposed through
// NewExperiments and the cmd/experiments binary.
package greengpu

import (
	"greengpu/internal/bridge"
	"greengpu/internal/core"
	"greengpu/internal/experiments"
	"greengpu/internal/hetero"
	"greengpu/internal/kernels"
	"greengpu/internal/testbed"
	"greengpu/internal/workload"
)

// Framework types, re-exported.
type (
	// Mode selects which GreenGPU tiers are active.
	Mode = core.Mode
	// Config parameterizes a framework run.
	Config = core.Config
	// Result summarizes a framework run.
	Result = core.Result
	// IterationStats describes one completed iteration.
	IterationStats = core.IterationStats
	// Levels names a clock operating point across the machine's domains.
	Levels = core.Levels

	// Machine is the assembled simulated testbed.
	Machine = testbed.Machine
	// WorkloadProfile is a calibrated evaluation workload.
	WorkloadProfile = workload.Profile
	// WorkloadSpec is the observable characterization a profile is
	// calibrated from.
	WorkloadSpec = workload.Spec

	// Experiments is the harness regenerating the paper's tables and
	// figures.
	Experiments = experiments.Env
)

// Framework modes, re-exported.
const (
	// Baseline is the Rodinia default: all work on the GPU, peak clocks.
	Baseline = core.Baseline
	// FreqScaling activates tier 2 only.
	FreqScaling = core.FreqScaling
	// Division activates tier 1 only.
	Division = core.Division
	// Holistic activates both tiers — GreenGPU proper.
	Holistic = core.Holistic
)

// NewTestbed assembles the default simulated testbed: GeForce 8800 GTX-
// class GPU, Phenom II X2-class CPU, PCIe-class interconnect, and two
// Wattsup-style power meters.
func NewTestbed() *Machine { return testbed.New() }

// DefaultConfig returns the paper's settings for the given mode: 3 s DVFS
// interval, WMA constants α_c=0.15, α_m=0.02, φ=0.3, β=0.2, 5% division
// step from a 30% initial CPU share with the oscillation safeguard on.
func DefaultConfig(mode Mode) Config { return core.DefaultConfig(mode) }

// Rodinia calibrates the nine Table II evaluation workloads against the
// default testbed devices.
func Rodinia() ([]*WorkloadProfile, error) {
	return workload.Rodinia(testbed.GeForce8800GTX(), testbed.PhenomIIX2())
}

// Profile selects a workload by name from a calibrated set.
func Profile(profiles []*WorkloadProfile, name string) (*WorkloadProfile, error) {
	return workload.ByName(profiles, name)
}

// Run executes the profile on the machine under cfg. The machine must be
// freshly assembled.
func Run(m *Machine, p *WorkloadProfile, cfg Config) (*Result, error) {
	return core.Run(m, p, cfg)
}

// NewExperiments builds the experiment harness over the default testbed
// and workload set.
func NewExperiments() (*Experiments, error) { return experiments.NewEnv() }

// Real-compute plane, re-exported. Kernel is the public contract: any
// computation whose iterations split into disjoint item ranges with a
// merge at the barrier can run under the division tier. The repository
// ships reference implementations (kmeans, hotspot, nbody, bfs, lud, srad,
// pathfinder, streamcluster, qg) in internal/kernels.
type (
	// Kernel is a real, splittable computation.
	Kernel = kernels.Kernel
	// Pool is a fixed-size worker pool.
	Pool = hetero.Pool
	// HeteroConfig parameterizes a two-pool divided run.
	HeteroConfig = hetero.Config
	// HeteroReport summarizes a two-pool divided run.
	HeteroReport = hetero.Report
	// MultiConfig parameterizes a k-way divided run.
	MultiConfig = hetero.MultiConfig
	// CharacterizeOptions tunes a real-kernel characterization.
	CharacterizeOptions = bridge.Options
	// Measurement is a real-kernel characterization result.
	Measurement = bridge.Measurement
)

// NewHeteroExecutor builds a two-pool executor running the kernel under
// the workload-division tier, driven by measured wall-clock times.
func NewHeteroExecutor(k Kernel, cpu, acc *Pool, cfg HeteroConfig) *hetero.Executor {
	return hetero.New(k, cpu, acc, cfg)
}

// NewMultiExecutor builds a k-way executor dividing each iteration across
// all pools proportionally to their measured processing rates.
func NewMultiExecutor(k Kernel, pools []*Pool, cfg MultiConfig) *hetero.MultiExecutor {
	return hetero.NewMulti(k, pools, cfg)
}

// Characterize measures a real kernel on two pools and derives a
// simulated-workload Spec, so energy-management policies can be explored
// on the simulated testbed before touching the real system.
func Characterize(mk func() Kernel, cpu, acc *Pool, opts CharacterizeOptions) (*Measurement, error) {
	return bridge.Characterize(mk, cpu, acc, opts)
}

// Calibrate turns a workload Spec (hand-written or produced by
// Characterize) into a profile runnable on the default simulated testbed.
func Calibrate(spec WorkloadSpec) (*WorkloadProfile, error) {
	return workload.Calibrate(spec, testbed.GeForce8800GTX(), testbed.PhenomIIX2())
}
