# Local entry points mirroring .github/workflows/ci.yml — `make check`
# runs exactly what CI runs.

GO ?= go

.PHONY: fmt fmtcheck vet build test race bench determinism check

fmt:
	gofmt -w .

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# The parallel engine's guarantee, end to end: the experiments binary must
# produce byte-identical output for any -jobs value.
determinism:
	$(GO) build -o /tmp/greengpu-experiments ./cmd/experiments
	/tmp/greengpu-experiments -run table2,sweep -jobs 1 -out /tmp/greengpu-seq > /tmp/greengpu-seq.txt
	/tmp/greengpu-experiments -run table2,sweep -jobs 8 -out /tmp/greengpu-par > /tmp/greengpu-par.txt
	diff -u /tmp/greengpu-seq.txt /tmp/greengpu-par.txt
	diff -r /tmp/greengpu-seq /tmp/greengpu-par
	rm -rf /tmp/greengpu-experiments /tmp/greengpu-seq /tmp/greengpu-par /tmp/greengpu-seq.txt /tmp/greengpu-par.txt

check: fmtcheck vet build race bench determinism
