# Local entry points mirroring .github/workflows/ci.yml — `make check`
# runs exactly what CI runs.

GO ?= go

.PHONY: fmt fmtcheck vet build test race bench bench-stable bench-json bench-gate bench-sweep-json bench-sweep-gate bench-fleet-json bench-fleet-gate bench-daemon-json bench-daemon-gate bench-gates bench-experiments daemon-smoke daemon-crash-smoke golden determinism chaos predict-gate lint-docs linkcheck check

fmt:
	gofmt -w .

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# bench-stable runs the hot-path micro-benchmarks with a fixed iteration
# count and five repetitions, the shape benchstat wants. Compare two trees
# with:
#
#	make bench-stable > old.txt          # on the baseline commit
#	make bench-stable > new.txt          # on the candidate commit
#	benchstat old.txt new.txt            # (golang.org/x/perf/cmd/benchstat)
#
# -benchtime=100x pins work per iteration so run-to-run variance comes only
# from the machine, and five counts give benchstat a distribution to test.
bench-stable:
	$(GO) test -run='^$$' -bench=. -benchmem -count=5 -benchtime=100x \
		./internal/sim ./internal/dvfs

# bench-json snapshots the hot-path benchmarks as machine-readable JSON.
# CI uploads the file as an artifact; the committed copy is the trajectory
# baseline reviewers diff against (see docs/PERF.md). The five counts are
# collapsed to min ns/op per benchmark by benchjson — the noise-robust
# estimator on shared machines, where interference only ever adds time.
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem -count=5 -benchtime=50000x \
		./internal/sim ./internal/dvfs | $(GO) run ./cmd/benchjson > BENCH_sim.json

# bench-gate is the regression gate CI enforces: a fresh benchmark run must
# stay within ±25% ns/op of the committed BENCH_sim.json and must never
# increase allocs/op (allocation counts are deterministic — any increase is
# a real escape, not noise). Refresh the baseline with `make bench-json`
# when an intentional change shifts the numbers.
bench-gate:
	$(GO) test -run='^$$' -bench=. -benchmem -count=5 -benchtime=50000x \
		./internal/sim ./internal/dvfs | $(GO) run ./cmd/benchjson -compare BENCH_sim.json -tolerance 0.25

# bench-sweep-json snapshots the massive-sweep engine benchmarks — the
# batched ladder² evaluation and its per-point naive baseline — as
# BENCH_sweep.json. The committed copy is the throughput contract: its
# points/s for BenchmarkSweepBatched must be at least 10x
# BenchmarkSweepNaive's (see docs/PERF.md "Sweeps").
bench-sweep-json:
	$(GO) test -run='^$$' -bench=BenchmarkSweep -benchmem -count=5 -benchtime=2000x \
		./internal/sweep | $(GO) run ./cmd/benchjson > BENCH_sweep.json

# bench-sweep-gate is the sweep regression gate CI enforces: a fresh run
# must stay within ±25% ns/op of the committed BENCH_sweep.json and must
# never increase allocs/op. The sweep engine's custom metrics are declared
# contracts, not notes: points/s and the predictor's evalreduction must
# not regress beyond the tolerance, and fullevals (the predicted search's
# full-evaluation budget, deterministic) must not grow. Refresh with
# `make bench-sweep-json` on intentional changes.
bench-sweep-gate:
	$(GO) test -run='^$$' -bench=BenchmarkSweep -benchmem -count=5 -benchtime=2000x \
		./internal/sweep | $(GO) run ./cmd/benchjson -compare BENCH_sweep.json -tolerance 0.25 \
		-gate-metrics 'points/s,evalreduction,fullevals:lower'

# bench-fleet-json snapshots the fleet engine benchmarks — the
# dedup-compressed 10k-node evaluation, its naive per-node baseline, and
# the zero-allocation aggregation loop — as BENCH_fleet.json. The
# committed copy is the throughput contract: BenchmarkFleetDedup's nodes/s
# must be at least 50x BenchmarkFleetNaive's, and its dedupratio is
# deterministic (see docs/PERF.md "Fleet"). The naive baseline runs
# without -benchmem: at ~629k allocs/op its count flickers by ±1 from
# runtime background allocation, which would flake the hard "no allocs/op
# increase" gate; its ns/op and nodes/s stay gated.
FLEET_BENCH = { $(GO) test -run='^$$' -bench='BenchmarkFleet(Dedup|Aggregate)' -benchmem \
		-count=5 -benchtime=200x ./internal/fleet; \
	$(GO) test -run='^$$' -bench=BenchmarkFleetNaive -count=5 -benchtime=20x ./internal/fleet; }

bench-fleet-json:
	$(FLEET_BENCH) | $(GO) run ./cmd/benchjson > BENCH_fleet.json

# bench-fleet-gate is the fleet regression gate CI enforces: a fresh run
# must stay within ±25% ns/op of the committed BENCH_fleet.json, must
# never increase allocs/op, and must hold the declared nodes/s and
# dedupratio contracts. Refresh with `make bench-fleet-json` on
# intentional changes.
bench-fleet-gate:
	$(FLEET_BENCH) | $(GO) run ./cmd/benchjson -compare BENCH_fleet.json -tolerance 0.25 \
		-gate-metrics 'nodes/s,dedupratio'

# bench-daemon-json snapshots the greengpud HTTP load benchmarks — real
# requests over loopback against a warm run cache (see docs/SERVICE.md
# "Capacity planning"). No -benchmem: HTTP handler allocation counts are
# scheduler-dependent and an alloc gate on them would be flaky.
DAEMON_BENCH = $(GO) test -run='^$$' -bench=BenchmarkDaemon -count=5 -benchtime=2000x \
		./internal/daemon

bench-daemon-json:
	$(DAEMON_BENCH) | $(GO) run ./cmd/benchjson > BENCH_daemon.json

# bench-daemon-gate is the daemon load-test gate CI enforces: a fresh run
# must stay within ±25% ns/op of the committed BENCH_daemon.json and must
# hold the declared req/s and points/s throughput contracts — the
# "sustained point-requests per second on a warm cache" headline. Refresh
# with `make bench-daemon-json` on intentional changes.
bench-daemon-gate:
	$(DAEMON_BENCH) | $(GO) run ./cmd/benchjson -compare BENCH_daemon.json -tolerance 0.25 \
		-gate-metrics 'req/s,points/s'

# daemon-smoke boots a real greengpud, drives it with curl, and enforces
# the byte-identity contract: the daemon's ?format=csv responses must be
# byte-identical to the same specs run through the one-shot
# cmd/experiments CLI. It also scrapes /metrics once and checks that
# SIGTERM drains and exits 0.
DAEMON_SMOKE_SWEEP = workloads=kmeans,hotspot core=all mem=all iters=4
DAEMON_SMOKE_FLEET = nodes=50 seed=7 workloads=kmeans,hotspot iters=4
DAEMON_SMOKE_ADDR = 127.0.0.1:7999

daemon-smoke:
	$(GO) build -o /tmp/greengpud-smoke ./cmd/greengpud
	$(GO) build -o /tmp/greengpu-smoke-exp ./cmd/experiments
	rm -rf /tmp/greengpu-smoke && mkdir -p /tmp/greengpu-smoke
	/tmp/greengpu-smoke-exp -sweep '$(DAEMON_SMOKE_SWEEP)' -out /tmp/greengpu-smoke > /dev/null 2>&1
	/tmp/greengpu-smoke-exp -fleet '$(DAEMON_SMOKE_FLEET)' -out /tmp/greengpu-smoke > /dev/null 2>&1
	/tmp/greengpud-smoke -addr $(DAEMON_SMOKE_ADDR) 2> /tmp/greengpu-smoke/daemon.log & \
	pid=$$!; \
	up=""; for i in $$(seq 1 100); do \
		curl -fsS http://$(DAEMON_SMOKE_ADDR)/healthz > /dev/null 2>&1 && { up=1; break; }; \
		sleep 0.1; \
	done; \
	[ -n "$$up" ] || { echo "daemon-smoke: daemon never became healthy" >&2; kill $$pid 2>/dev/null; exit 1; }; \
	fail=""; \
	curl -fsS -X POST 'http://$(DAEMON_SMOKE_ADDR)/v1/sweep?format=csv' \
		-d '{"spec":"$(DAEMON_SMOKE_SWEEP)"}' > /tmp/greengpu-smoke/daemon_sweep.csv || fail="sweep POST"; \
	diff /tmp/greengpu-smoke/sweep_points.csv /tmp/greengpu-smoke/daemon_sweep.csv || fail="sweep CSV drift"; \
	curl -fsS -X POST 'http://$(DAEMON_SMOKE_ADDR)/v1/fleet?format=csv&table=groups' \
		-d '{"spec":"$(DAEMON_SMOKE_FLEET)"}' > /tmp/greengpu-smoke/daemon_fleet_groups.csv || fail="fleet POST"; \
	diff /tmp/greengpu-smoke/fleet_1.csv /tmp/greengpu-smoke/daemon_fleet_groups.csv || fail="fleet groups CSV drift"; \
	curl -fsS -X POST 'http://$(DAEMON_SMOKE_ADDR)/v1/fleet?format=csv&table=summary' \
		-d '{"spec":"$(DAEMON_SMOKE_FLEET)"}' > /tmp/greengpu-smoke/daemon_fleet_summary.csv || fail="fleet summary POST"; \
	diff /tmp/greengpu-smoke/fleet_2.csv /tmp/greengpu-smoke/daemon_fleet_summary.csv || fail="fleet summary CSV drift"; \
	curl -fsS http://$(DAEMON_SMOKE_ADDR)/metrics | grep -q '^greengpu_daemon_sweep_requests_total 1$$' \
		|| fail="metrics scrape"; \
	kill -TERM $$pid; \
	wait $$pid || fail="nonzero exit on SIGTERM"; \
	grep -q 'jobs at exit' /tmp/greengpu-smoke/daemon.log || fail="missing drain log"; \
	[ -z "$$fail" ] || { echo "daemon-smoke: $$fail" >&2; cat /tmp/greengpu-smoke/daemon.log >&2; exit 1; }
	rm -rf /tmp/greengpu-smoke /tmp/greengpud-smoke /tmp/greengpu-smoke-exp

# daemon-crash-smoke SIGKILLs a journaled daemon mid-sweep and enforces
# the crash-recovery contract: the restarted daemon (same -state-dir and
# -cache-dir) must announce the recovery, re-execute the job under its
# original id, and serve ?format=csv bytes identical to the one-shot
# cmd/experiments run of the same spec — deterministic replay, not a
# checkpoint. A final SIGTERM must still drain and exit 0.
DAEMON_CRASH_SPEC = draws=400 mode=holistic workloads=kmeans,hotspot
DAEMON_CRASH_ADDR = 127.0.0.1:7998

daemon-crash-smoke:
	$(GO) build -o /tmp/greengpud-crash ./cmd/greengpud
	$(GO) build -o /tmp/greengpu-crash-exp ./cmd/experiments
	rm -rf /tmp/greengpu-crash && mkdir -p /tmp/greengpu-crash/state /tmp/greengpu-crash/cache
	/tmp/greengpu-crash-exp -sweep '$(DAEMON_CRASH_SPEC)' -out /tmp/greengpu-crash > /dev/null 2>&1
	/tmp/greengpud-crash -addr $(DAEMON_CRASH_ADDR) -state-dir /tmp/greengpu-crash/state \
		-cache-dir /tmp/greengpu-crash/cache 2> /tmp/greengpu-crash/daemon1.log & \
	pid=$$!; \
	up=""; for i in $$(seq 1 100); do \
		curl -fsS http://$(DAEMON_CRASH_ADDR)/healthz > /dev/null 2>&1 && { up=1; break; }; \
		sleep 0.1; \
	done; \
	[ -n "$$up" ] || { echo "daemon-crash-smoke: daemon never became healthy" >&2; kill -9 $$pid 2>/dev/null; exit 1; }; \
	id=$$(curl -fsS -X POST http://$(DAEMON_CRASH_ADDR)/v1/sweep \
		-d '{"spec":"$(DAEMON_CRASH_SPEC)","async":true}' | sed -n 's/.*"id":"\([0-9]*\)".*/\1/p'); \
	[ -n "$$id" ] || { echo "daemon-crash-smoke: no job id in the 202" >&2; kill -9 $$pid 2>/dev/null; exit 1; }; \
	kill -9 $$pid; wait $$pid 2>/dev/null; \
	/tmp/greengpud-crash -addr $(DAEMON_CRASH_ADDR) -state-dir /tmp/greengpu-crash/state \
		-cache-dir /tmp/greengpu-crash/cache 2> /tmp/greengpu-crash/daemon2.log & \
	pid=$$!; \
	up=""; for i in $$(seq 1 100); do \
		curl -fsS http://$(DAEMON_CRASH_ADDR)/healthz > /dev/null 2>&1 && { up=1; break; }; \
		sleep 0.1; \
	done; \
	[ -n "$$up" ] || { echo "daemon-crash-smoke: daemon never restarted" >&2; kill -9 $$pid 2>/dev/null; exit 1; }; \
	fail=""; \
	grep -q 'recovered 1 pending job(s)' /tmp/greengpu-crash/daemon2.log || fail="missing recovery log"; \
	final=""; for i in $$(seq 1 600); do \
		st=$$(curl -fsS http://$(DAEMON_CRASH_ADDR)/v1/results/$$id); \
		echo "$$st" | grep -q '"status":"running"' || { final="$$st"; break; }; \
		sleep 0.5; \
	done; \
	echo "$$final" | grep -q '"status":"done"' || fail="recovered job not done: $$final"; \
	echo "$$final" | grep -q '"recovered":true' || fail="recovered job not flagged"; \
	curl -fsS "http://$(DAEMON_CRASH_ADDR)/v1/results/$$id?format=csv" \
		> /tmp/greengpu-crash/recovered.csv || fail="recovered CSV fetch"; \
	diff /tmp/greengpu-crash/sweep_points.csv /tmp/greengpu-crash/recovered.csv \
		|| fail="recovered CSV drift from uninterrupted run"; \
	curl -fsS http://$(DAEMON_CRASH_ADDR)/v1/jobs | grep -q '"recovered":true' \
		|| fail="/v1/jobs missing recovered marker"; \
	kill -TERM $$pid; \
	wait $$pid || fail="nonzero exit on SIGTERM"; \
	[ -z "$$fail" ] || { echo "daemon-crash-smoke: $$fail" >&2; \
		cat /tmp/greengpu-crash/daemon1.log /tmp/greengpu-crash/daemon2.log >&2; exit 1; }
	rm -rf /tmp/greengpu-crash /tmp/greengpud-crash /tmp/greengpu-crash-exp

# bench-gates runs the sweep and fleet benchmark suites once and checks
# both committed baselines in a single combined benchjson gate — the
# multi-file -compare form. One benchmark pass, one verdict, instead of
# one gate invocation per file.
bench-gates:
	{ $(GO) test -run='^$$' -bench=BenchmarkSweep -benchmem -count=5 -benchtime=2000x ./internal/sweep; \
	  $(FLEET_BENCH); } | \
		$(GO) run ./cmd/benchjson -compare BENCH_sweep.json,BENCH_fleet.json -tolerance 0.25 \
		-gate-metrics 'points/s,evalreduction,nodes/s,dedupratio,fullevals:lower'

# bench-experiments times the full experiment suite without a cache, with a
# cold cache, and against the warm cache, recording the wall-clock numbers
# and hit/miss counters in BENCH_experiments.json (see docs/PERF.md).
bench-experiments:
	$(GO) run ./cmd/experiments -bench-cache BENCH_experiments.json -jobs 8

# golden regenerates every experiment CSV and diffs against the committed
# results/ directory — the zero-output-drift gate for perf work. The run
# cache must be invisible in the output, so the gate regenerates under
# every cache mode: disabled, in-memory, and disk (cold then warm against
# the same directory), at -jobs 1 and -jobs 8.
golden:
	$(GO) build -o /tmp/greengpu-golden-bin ./cmd/experiments
	rm -rf /tmp/greengpu-golden /tmp/greengpu-golden-cache
	for args in \
		"-no-cache -jobs 1" \
		"-no-cache -jobs 8" \
		"-jobs 1" \
		"-jobs 8" \
		"-cache-dir /tmp/greengpu-golden-cache -jobs 8" \
		"-cache-dir /tmp/greengpu-golden-cache -jobs 8" \
		"-jobs 8 -metrics /tmp/greengpu-golden-m.prom -flight-recorder 64 -flight-recorder-out /tmp/greengpu-golden-f.json"; do \
		rm -rf /tmp/greengpu-golden; \
		/tmp/greengpu-golden-bin -run all -out /tmp/greengpu-golden $$args > /dev/null 2>/dev/null || exit 1; \
		diff -r results /tmp/greengpu-golden || { echo "golden mismatch with: $$args" >&2; exit 1; }; \
	done
	rm -rf /tmp/greengpu-golden /tmp/greengpu-golden-cache /tmp/greengpu-golden-bin \
		/tmp/greengpu-golden-m.prom /tmp/greengpu-golden-f.json

# The parallel engine's guarantee, end to end: the experiments binary must
# produce byte-identical output for any -jobs value.
determinism:
	$(GO) build -o /tmp/greengpu-experiments ./cmd/experiments
	/tmp/greengpu-experiments -run table2,sweep -jobs 1 -out /tmp/greengpu-seq > /tmp/greengpu-seq.txt
	/tmp/greengpu-experiments -run table2,sweep -jobs 8 -out /tmp/greengpu-par > /tmp/greengpu-par.txt
	diff -u /tmp/greengpu-seq.txt /tmp/greengpu-par.txt
	diff -r /tmp/greengpu-seq /tmp/greengpu-par
	rm -rf /tmp/greengpu-experiments /tmp/greengpu-seq /tmp/greengpu-par /tmp/greengpu-seq.txt /tmp/greengpu-par.txt

# chaos runs the whole experiment suite in chaos mode — every run injected
# with the moderate all-classes fault plan (see docs/ROBUSTNESS.md) — and
# diffs -jobs 1 against -jobs 8. Fault sequences are pure functions of each
# point's plan, so even a suite full of dropped sensors, rejected clock
# writes and stragglers must stay byte-identical at any worker count. The
# committed fault-free CSVs (including results/fault_resilience.csv) are
# covered by `make golden`; this gate covers determinism under injection.
chaos:
	$(GO) build -o /tmp/greengpu-chaos ./cmd/experiments
	/tmp/greengpu-chaos -run all -faults default -jobs 1 -out /tmp/greengpu-chaos-seq > /tmp/greengpu-chaos-seq.txt
	/tmp/greengpu-chaos -run all -faults default -jobs 8 -out /tmp/greengpu-chaos-par > /tmp/greengpu-chaos-par.txt
	diff -u /tmp/greengpu-chaos-seq.txt /tmp/greengpu-chaos-par.txt
	diff -r /tmp/greengpu-chaos-seq /tmp/greengpu-chaos-par
	rm -rf /tmp/greengpu-chaos /tmp/greengpu-chaos-seq /tmp/greengpu-chaos-par \
		/tmp/greengpu-chaos-seq.txt /tmp/greengpu-chaos-par.txt

# predict-gate regenerates the prediction validation study and checks it
# against CI's accuracy thresholds (see cmd/predictgate): every sweet spot
# within one ladder step of brute force or within 5% measured energy
# regret, and median relative energy prediction error within 5%. The
# regenerated CSV must also match the committed results/ copy, so the gate
# fails when the predictor drifts even inside the thresholds.
predict-gate:
	rm -rf /tmp/greengpu-predict
	$(GO) run ./cmd/experiments -run predict -jobs 8 -out /tmp/greengpu-predict > /dev/null
	diff /tmp/greengpu-predict/predict_validation.csv results/predict_validation.csv
	$(GO) run ./cmd/predictgate /tmp/greengpu-predict/predict_validation.csv
	rm -rf /tmp/greengpu-predict

# lint-docs enforces godoc hygiene on every exported identifier (see
# cmd/lintdocs); linkcheck verifies the relative links in the markdown docs
# (see cmd/linkcheck).
lint-docs:
	$(GO) run ./cmd/lintdocs internal cmd examples

linkcheck:
	$(GO) run ./cmd/linkcheck README.md DESIGN.md ROADMAP.md CHANGES.md docs

check: fmtcheck vet build race bench determinism chaos daemon-smoke daemon-crash-smoke bench-gate bench-sweep-gate bench-fleet-gate bench-daemon-gate predict-gate lint-docs linkcheck
