# Local entry points mirroring .github/workflows/ci.yml — `make check`
# runs exactly what CI runs.

GO ?= go

.PHONY: fmt fmtcheck vet build test race bench bench-stable bench-json golden determinism check

fmt:
	gofmt -w .

fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# bench-stable runs the hot-path micro-benchmarks with a fixed iteration
# count and five repetitions, the shape benchstat wants. Compare two trees
# with:
#
#	make bench-stable > old.txt          # on the baseline commit
#	make bench-stable > new.txt          # on the candidate commit
#	benchstat old.txt new.txt            # (golang.org/x/perf/cmd/benchstat)
#
# -benchtime=100x pins work per iteration so run-to-run variance comes only
# from the machine, and five counts give benchstat a distribution to test.
bench-stable:
	$(GO) test -run='^$$' -bench=. -benchmem -count=5 -benchtime=100x \
		./internal/sim ./internal/dvfs

# bench-json snapshots the hot-path benchmarks as machine-readable JSON.
# CI uploads the file as an artifact; the committed copy is the trajectory
# baseline reviewers diff against (see docs/PERF.md).
bench-json:
	$(GO) test -run='^$$' -bench=. -benchmem -benchtime=1000x \
		./internal/sim ./internal/dvfs | $(GO) run ./cmd/benchjson > BENCH_sim.json

# golden regenerates every experiment CSV and diffs against the committed
# results/ directory — the zero-output-drift gate for perf work.
golden:
	$(GO) build -o /tmp/greengpu-golden-bin ./cmd/experiments
	rm -rf /tmp/greengpu-golden && /tmp/greengpu-golden-bin -run all -out /tmp/greengpu-golden > /dev/null
	diff -r results /tmp/greengpu-golden
	rm -rf /tmp/greengpu-golden /tmp/greengpu-golden-bin

# The parallel engine's guarantee, end to end: the experiments binary must
# produce byte-identical output for any -jobs value.
determinism:
	$(GO) build -o /tmp/greengpu-experiments ./cmd/experiments
	/tmp/greengpu-experiments -run table2,sweep -jobs 1 -out /tmp/greengpu-seq > /tmp/greengpu-seq.txt
	/tmp/greengpu-experiments -run table2,sweep -jobs 8 -out /tmp/greengpu-par > /tmp/greengpu-par.txt
	diff -u /tmp/greengpu-seq.txt /tmp/greengpu-par.txt
	diff -r /tmp/greengpu-seq /tmp/greengpu-par
	rm -rf /tmp/greengpu-experiments /tmp/greengpu-seq /tmp/greengpu-par /tmp/greengpu-seq.txt /tmp/greengpu-par.txt

check: fmtcheck vet build race bench determinism
